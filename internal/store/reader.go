package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Reader is an mmap-backed graph implementing graph.CSR over a store
// file. Opening is O(1): only the header is read and validated; adjacency
// blocks are decoded lazily on first touch and kept in a small
// CLOCK-evicted cache, so repeat prologue scans (and repeat seed builds
// over the same region) don't re-varint-decode.
//
// A Reader is safe for concurrent use. Neighbors returns slices into
// decoded blocks; an evicted block stays valid for any caller still
// holding its slices (eviction only drops the cache's reference), exactly
// matching *graph.Graph's aliasing contract.
//
// Close unmaps the file. The serving layer's registry refcounts entries
// and only closes a Reader once no query holds it; Close-then-access is a
// programming error and panics with a clear message rather than faulting
// on an unmapped page.
type Reader struct {
	hdr    Header
	path   string
	data   []byte
	unmap  func() error
	closed atomic.Bool

	mu    sync.Mutex
	cache *clockCache
}

// DefaultCacheBlocks is the default decoded-block cache capacity. At the
// default block geometry this keeps roughly half a million vertices'
// decoded adjacency resident — enough that the O(n+m) prologue over a
// multi-million-vertex graph mostly decodes each block once.
const DefaultCacheBlocks = 256

// OpenFile opens a store file with the default decoded-block cache.
func OpenFile(path string) (*Reader, error) {
	return OpenFileCache(path, DefaultCacheBlocks)
}

// OpenFileCache opens a store file keeping at most cacheBlocks decoded
// blocks resident.
func OpenFileCache(path string, cacheBlocks int) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, unmap, err := mapFile(f)
	if err != nil {
		return nil, fmt.Errorf("store: mapping %s: %w", path, err)
	}
	hdr, err := decodeHeader(data, uint64(st.Size()))
	if err != nil {
		unmap() //nolint:errcheck // the decode error is the one to report
		return nil, fmt.Errorf("store: %s: %w", path, err)
	}
	if cacheBlocks < 1 {
		cacheBlocks = 1
	}
	return &Reader{
		hdr:   hdr,
		path:  path,
		data:  data,
		unmap: unmap,
		cache: newClockCache(cacheBlocks),
	}, nil
}

// Close unmaps the file. The Reader must not be used afterwards.
func (r *Reader) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache = nil
	r.data = nil
	return r.unmap()
}

// Header returns the decoded file header.
func (r *Reader) Header() Header { return r.hdr }

// Path returns the file the Reader is mapped over.
func (r *Reader) Path() string { return r.path }

// N returns the vertex count.
func (r *Reader) N() int { return int(r.hdr.N) }

// M returns the undirected edge count.
func (r *Reader) M() int { return int(r.hdr.M) }

// MaxDegree returns Δ from the header in O(1).
func (r *Reader) MaxDegree() int { return int(r.hdr.MaxDeg) }

// StoredDigest returns the content digest recorded in the header. It
// equals graph.Digest of the same graph loaded in memory (the writer
// hashes the canonical encoding it emits), so graph.DigestOf never
// rehashes a store-backed graph.
func (r *Reader) StoredDigest() [32]byte { return r.hdr.Digest }

// DigestHex returns StoredDigest as lowercase hex.
func (r *Reader) DigestHex() string {
	d := r.hdr.Digest
	return hex.EncodeToString(d[:])
}

// Degree returns deg(v). Like Neighbors it decodes v's block on a cache
// miss; the prologue's degree scan is sequential, so each block decodes
// once and every later Degree/Neighbors in the block hits the cache.
func (r *Reader) Degree(v int) int {
	blk := r.block(v)
	i := v - int(blk.base)
	return int(blk.offsets[i+1] - blk.offsets[i])
}

// Neighbors returns the sorted adjacency row of v. The slice aliases the
// decoded block and must not be modified.
func (r *Reader) Neighbors(v int) []int32 {
	return r.block(v).row(v)
}

// blockOffset reads index entry b straight out of the mapping — the index
// is fixed-width, so no part of it is parsed at open time.
func (r *Reader) blockOffset(b int) uint64 {
	return binary.LittleEndian.Uint64(r.data[r.hdr.IndexOff+8*uint64(b):])
}

func (r *Reader) block(v int) *decodedBlock {
	if v < 0 || uint64(v) >= r.hdr.N {
		panic(fmt.Sprintf("store: vertex %d out of range [0,%d)", v, r.hdr.N))
	}
	b := v / int(r.hdr.BlockVerts)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed.Load() {
		panic("store: use of closed Reader (registry refcount bug?)")
	}
	if blk := r.cache.get(b); blk != nil {
		return blk
	}
	blk, err := r.decodeBlockLocked(b)
	if err != nil {
		// The header was validated at open; a block that fails to decode
		// means on-disk corruption after open (or a torn write the CRC'd
		// header can't see). There is no error path through graph.CSR, so
		// corruption surfaces as a panic naming the file and block.
		panic(fmt.Sprintf("store: %s: %v", r.path, err))
	}
	r.cache.put(b, blk)
	return blk
}

func (r *Reader) decodeBlockLocked(b int) (*decodedBlock, error) {
	lo, hi := r.blockOffset(b), r.blockOffset(b+1)
	if lo > hi || hi > r.hdr.DataOff+r.hdr.DataLen || lo < r.hdr.DataOff {
		return nil, fmt.Errorf("block %d has invalid extent [%d,%d)", b, lo, hi)
	}
	base := b * int(r.hdr.BlockVerts)
	cnt := min(int(r.hdr.N)-base, int(r.hdr.BlockVerts))
	return decodeBlock(r.data[lo:hi], base, cnt, int(r.hdr.N))
}

// VerifyDigest re-derives the content digest by streaming every block's
// canonical bytes and compares it with the header. It is a full O(n+m)
// scan — tooling (kplexstore inspect -verify) and tests use it; the serve
// path never does.
func (r *Reader) VerifyDigest() error {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	w := binary.PutUvarint(buf[:], r.hdr.N)
	h.Write(buf[:w])
	for b := 0; b < int(r.hdr.NumBlocks); b++ {
		lo, hi := r.blockOffset(b), r.blockOffset(b+1)
		if lo > hi || hi > r.hdr.DataOff+r.hdr.DataLen || lo < r.hdr.DataOff {
			return fmt.Errorf("store: %s: block %d has invalid extent [%d,%d)", r.path, b, lo, hi)
		}
		// Validate the block decodes before trusting its bytes as canon.
		base := b * int(r.hdr.BlockVerts)
		cnt := min(int(r.hdr.N)-base, int(r.hdr.BlockVerts))
		if _, err := decodeBlock(r.data[lo:hi], base, cnt, int(r.hdr.N)); err != nil {
			return fmt.Errorf("store: %s: %w", r.path, err)
		}
		h.Write(r.data[lo:hi])
	}
	var got [32]byte
	h.Sum(got[:0])
	if got != r.hdr.Digest {
		return fmt.Errorf("store: %s: content digest mismatch (header %x, computed %x)", r.path, r.hdr.Digest[:8], got[:8])
	}
	return nil
}

// clockCache is a fixed-capacity CLOCK (second-chance) cache of decoded
// blocks. CLOCK gives the scan-then-point-access pattern of the prologue
// (one sequential degree pass, then peel-order random access) most of
// LRU's hit rate at a fraction of the bookkeeping: a hit only sets a
// reference bit, no list splice.
type clockCache struct {
	slots   []clockSlot
	byBlock map[int]int
	hand    int
}

type clockSlot struct {
	block int
	ref   bool
	blk   *decodedBlock
}

func newClockCache(capacity int) *clockCache {
	c := &clockCache{
		slots:   make([]clockSlot, 0, capacity),
		byBlock: make(map[int]int, capacity),
	}
	return c
}

func (c *clockCache) get(block int) *decodedBlock {
	i, ok := c.byBlock[block]
	if !ok {
		return nil
	}
	c.slots[i].ref = true
	return c.slots[i].blk
}

func (c *clockCache) put(block int, blk *decodedBlock) {
	if len(c.slots) < cap(c.slots) {
		c.byBlock[block] = len(c.slots)
		c.slots = append(c.slots, clockSlot{block: block, ref: true, blk: blk})
		return
	}
	// Sweep the hand: clear reference bits until an unreferenced slot
	// turns up. Bounded by two revolutions.
	for {
		s := &c.slots[c.hand]
		if s.ref {
			s.ref = false
			c.hand = (c.hand + 1) % len(c.slots)
			continue
		}
		delete(c.byBlock, s.block)
		c.byBlock[block] = c.hand
		*s = clockSlot{block: block, ref: true, blk: blk}
		c.hand = (c.hand + 1) % len(c.slots)
		return
	}
}

var _ graph.CSR = (*Reader)(nil)
var _ graph.StoredDigester = (*Reader)(nil)
