package store

import (
	"bytes"
	"testing"
)

// FuzzBlockDecode drives the varint/delta block decoder with arbitrary
// bytes. The decoder sits directly on mmap'd file content, so it must
// reject every malformed input with an error — never panic, never accept
// an encoding that violates the row invariants. For inputs it does
// accept, re-encoding the decoded rows must reproduce the input bytes
// exactly: the encoding is canonical (one valid byte string per block
// content), which is what lets the writer hash the bytes it emits and
// still call the result a content digest.
func FuzzBlockDecode(f *testing.F) {
	// Valid two-vertex block over n=2.
	valid := appendRow(nil, []int32{1})
	valid = appendRow(valid, []int32{0})
	f.Add(valid, uint16(2), uint32(2))
	// Star row: vertex 0 adjacent to 1..5 over n=6, then five empty rows.
	star := appendRow(nil, []int32{1, 2, 3, 4, 5})
	for i := 0; i < 5; i++ {
		star = appendRow(star, nil)
	}
	f.Add(star, uint16(6), uint32(6))
	// Corruption shapes the unit tests pin.
	f.Add(valid[:len(valid)-1], uint16(2), uint32(2))                                                     // truncated
	f.Add(append([]byte{0x00}, valid...), uint16(2), uint32(2))                                           // shifted
	f.Add([]byte{0x05, 0x01, 0x01, 0x00}, uint16(2), uint32(2))                                           // degree > n
	f.Add([]byte{0x02, 0x01, 0x00, 0x01, 0x00}, uint16(2), uint32(2))                                     // duplicate neighbour
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}, uint16(1), uint32(4)) // 10-byte varint
	f.Add([]byte{}, uint16(0), uint32(0))

	f.Fuzz(func(t *testing.T, enc []byte, cnt16 uint16, n32 uint32) {
		cnt := int(cnt16 % 4097)
		n := int(n32 % (1 << 20))
		blk, err := decodeBlock(enc, 0, cnt, n)
		if err != nil {
			return
		}
		re := make([]byte, 0, len(enc))
		for i := 0; i < cnt; i++ {
			row := blk.row(i)
			prev := int32(-1)
			for _, u := range row {
				if u <= prev || int(u) >= n || int(u) == i {
					t.Fatalf("accepted block violates row invariants: row %d = %v", i, row)
				}
				prev = u
			}
			re = appendRow(re, row)
		}
		if !bytes.Equal(re, enc) {
			t.Fatalf("decode/encode not canonical: input %x re-encodes to %x", enc, re)
		}
	})
}
