package store

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Catalog is the persistent warm layer of a kplexd data directory: a
// manifest of known store files keyed by name, each pinned to the content
// digest recorded when it was registered, plus serialized run prologues
// keyed by digest × (k, q, ctcp). Everything the catalog answers —
// lookup, stats, digest — comes from manifest entries and store headers,
// so a restart reaches "serving, warm" in O(1) per graph: no parse, no
// rehash, no prologue recompute.
//
// On-disk layout under dir:
//
//	manifest.json            atomic-rename snapshot of the entries
//	<name>.kpg               the store files themselves
//	prologues/<digest>-k<k>-q<q>[-ctcp].kpp
//
// The manifest is advisory state *about* the immutable store files, so
// its write discipline is simple: serialize under the catalog lock,
// write manifest.json.tmp, fsync, rename. A crash between the two leaves
// the previous snapshot, and OpenCatalog re-adopts any untracked *.kpg it
// finds, so nothing is ever lost — at worst re-registered.
type Catalog struct {
	dir string

	mu      sync.Mutex
	entries map[string]*CatalogEntry
}

// CatalogEntry is one registered graph. Stats are copied out of the store
// header at registration so listings never touch the file.
type CatalogEntry struct {
	Name         string    `json:"name"`
	File         string    `json:"file"` // path relative to the catalog dir
	Digest       string    `json:"digest"`
	N            int       `json:"n"`
	M            int64     `json:"m"`
	MaxDeg       int       `json:"maxDeg"`
	FileBytes    int64     `json:"fileBytes"`
	RegisteredAt time.Time `json:"registeredAt"`
}

const (
	manifestName = "manifest.json"
	prologueDir  = "prologues"
	// StoreExt is the store-file extension the catalog scans for.
	StoreExt = ".kpg"
)

// OpenCatalog opens (creating if needed) a catalog directory: the
// manifest is loaded, and any *.kpg present but untracked — dropped in by
// an operator, or registered just before a crash beat the manifest write
// — is adopted by reading its header (O(1) per file).
func OpenCatalog(dir string) (*Catalog, error) {
	if err := os.MkdirAll(filepath.Join(dir, prologueDir), 0o755); err != nil {
		return nil, err
	}
	c := &Catalog{dir: dir, entries: make(map[string]*CatalogEntry)}
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case err == nil:
		var list []*CatalogEntry
		if err := json.Unmarshal(raw, &list); err != nil {
			return nil, fmt.Errorf("store: catalog manifest %s: %w", dir, err)
		}
		for _, e := range list {
			c.entries[e.Name] = e
		}
	case os.IsNotExist(err):
	default:
		return nil, err
	}
	adopted, err := c.adoptUntracked()
	if err != nil {
		return nil, err
	}
	if adopted {
		if err := c.saveLocked(); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// Dir returns the catalog directory.
func (c *Catalog) Dir() string { return c.dir }

// adoptUntracked registers every *.kpg in the directory the manifest does
// not know, dropping entries whose file has vanished. Called at open,
// before the catalog is shared, so it runs lockless.
func (c *Catalog) adoptUntracked() (changed bool, err error) {
	for name, e := range c.entries {
		if _, err := os.Stat(filepath.Join(c.dir, e.File)); err != nil {
			delete(c.entries, name)
			changed = true
		}
	}
	files, err := os.ReadDir(c.dir)
	if err != nil {
		return changed, err
	}
	byFile := make(map[string]bool, len(c.entries))
	for _, e := range c.entries {
		byFile[e.File] = true
	}
	for _, f := range files {
		if f.IsDir() || !strings.HasSuffix(f.Name(), StoreExt) || byFile[f.Name()] {
			continue
		}
		name := strings.TrimSuffix(f.Name(), StoreExt)
		if _, taken := c.entries[name]; taken {
			continue // manifest name collides with a foreign file; leave it
		}
		e, err := entryFromFile(c.dir, f.Name(), name)
		if err != nil {
			// A half-written or foreign .kpg must not fail startup; it is
			// simply not served.
			continue
		}
		c.entries[name] = e
		changed = true
	}
	return changed, nil
}

// entryFromFile builds a manifest entry from a store file's header.
func entryFromFile(dir, file, name string) (*CatalogEntry, error) {
	r, err := OpenFile(filepath.Join(dir, file))
	if err != nil {
		return nil, err
	}
	defer r.Close()
	st, err := os.Stat(filepath.Join(dir, file))
	if err != nil {
		return nil, err
	}
	return &CatalogEntry{
		Name:         name,
		File:         file,
		Digest:       r.DigestHex(),
		N:            r.N(),
		M:            int64(r.M()),
		MaxDeg:       r.MaxDegree(),
		FileBytes:    st.Size(),
		RegisteredAt: time.Now().UTC(),
	}, nil
}

// Register adds (or replaces) a named graph backed by a store file that
// already lives inside the catalog directory, and persists the manifest.
func (c *Catalog) Register(name, file string) (*CatalogEntry, error) {
	if filepath.Dir(file) != "." {
		return nil, fmt.Errorf("store: catalog file %q must be a bare filename inside the catalog directory", file)
	}
	e, err := entryFromFile(c.dir, file, name)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[name] = e
	if err := c.saveLocked(); err != nil {
		delete(c.entries, name)
		return nil, err
	}
	return e, nil
}

// Lookup returns the manifest entry for name, or nil.
func (c *Catalog) Lookup(name string) *CatalogEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[name]; ok {
		cp := *e
		return &cp
	}
	return nil
}

// List returns the manifest entries sorted by name.
func (c *Catalog) List() []CatalogEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CatalogEntry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// OpenGraph maps the named graph and verifies the file still carries the
// digest the manifest pinned — an O(1) header comparison, not a rehash; a
// swapped or rebuilt file with different content is refused rather than
// silently served under stale cache keys.
func (c *Catalog) OpenGraph(name string) (*Reader, error) {
	e := c.Lookup(name)
	if e == nil {
		return nil, fmt.Errorf("store: catalog has no graph %q", name)
	}
	r, err := OpenFile(filepath.Join(c.dir, e.File))
	if err != nil {
		return nil, err
	}
	if got := r.DigestHex(); got != e.Digest {
		r.Close()
		return nil, fmt.Errorf("store: catalog graph %q: file digest %.16s… does not match registered %.16s… (re-register the file)", name, got, e.Digest)
	}
	return r, nil
}

// saveLocked writes the manifest snapshot: tmp, fsync, rename, dir fsync.
func (c *Catalog) saveLocked() error {
	list := make([]*CatalogEntry, 0, len(c.entries))
	for _, e := range c.entries {
		list = append(list, e)
	}
	sort.Slice(list, func(i, j int) bool { return list[i].Name < list[j].Name })
	raw, err := json.MarshalIndent(list, "", "  ")
	if err != nil {
		return err
	}
	return atomicWrite(filepath.Join(c.dir, manifestName), raw)
}

func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// prologuePath names the serialized run prologue for one cache cell. The
// digest is hex and the options are small ints, so the name is filesystem
// safe by construction.
func (c *Catalog) prologuePath(digestHex string, k, q int, ctcp bool) (string, error) {
	if len(digestHex) != 64 {
		return "", fmt.Errorf("store: prologue digest %q is not a sha256 hex string", digestHex)
	}
	if _, err := hex.DecodeString(digestHex); err != nil {
		return "", fmt.Errorf("store: prologue digest %q is not hex: %w", digestHex, err)
	}
	name := fmt.Sprintf("%s-k%d-q%d", digestHex, k, q)
	if ctcp {
		name += "-ctcp"
	}
	return filepath.Join(c.dir, prologueDir, name+".kpp"), nil
}

// SavePrologue persists a serialized run prologue (kplex.MarshalPrepared
// output) for the given cache cell, atomically.
func (c *Catalog) SavePrologue(digestHex string, k, q int, ctcp bool, data []byte) error {
	path, err := c.prologuePath(digestHex, k, q, ctcp)
	if err != nil {
		return err
	}
	return atomicWrite(path, data)
}

// LoadPrologue returns the serialized prologue for the cell, or
// (nil, nil) when none is stored.
func (c *Catalog) LoadPrologue(digestHex string, k, q int, ctcp bool) ([]byte, error) {
	path, err := c.prologuePath(digestHex, k, q, ctcp)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	return data, err
}

// RemovePrologue drops one stored cell (tests and tooling).
func (c *Catalog) RemovePrologue(digestHex string, k, q int, ctcp bool) error {
	path, err := c.prologuePath(digestHex, k, q, ctcp)
	if err != nil {
		return err
	}
	err = os.Remove(path)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}
