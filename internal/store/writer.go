package store

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"os"
	"path/filepath"

	"repro/internal/graph"
)

// Writer builds a store file one vertex row at a time, in vertex order.
// It is the single write path for both the in-memory exporter
// (WriteGraphFile) and the bounded-memory streaming converter: rows go
// straight from the caller into the current block's encode buffer, the
// content digest is folded in incrementally over exactly the bytes
// written, and nothing proportional to the graph is ever held in memory.
//
// The file is written as <path>.tmp and atomically renamed into place by
// Finish, so a crashed or failed conversion never leaves a half-written
// store where a catalog scan could find it.
type Writer struct {
	path    string
	tmp     string
	f       *os.File
	bw      *bufio.Writer
	hdr     Header
	digest  hash.Hash
	offsets []uint64 // block offsets; filled as blocks close
	buf     []byte   // current block's encoded bytes
	nextV   int
	arcs    uint64 // sum of row lengths (= 2m when symmetric)
	written uint64 // data bytes flushed so far
	done    bool
}

// Create starts writing a store file for a graph with n vertices.
// blockVerts <= 0 selects DefaultBlockVerts. Rows must then be supplied
// for every vertex 0..n-1 in order via AddRow, and the file is sealed by
// Finish.
func Create(path string, n int, blockVerts int) (*Writer, error) {
	if n < 0 || n > 1<<31 {
		return nil, fmt.Errorf("store: vertex count %d outside [0, 2^31]", n)
	}
	if blockVerts <= 0 {
		blockVerts = DefaultBlockVerts
	}
	numBlocks := (uint64(n) + uint64(blockVerts) - 1) / uint64(blockVerts)
	indexOff := uint64(pageSize)
	indexLen := 8 * (numBlocks + 1)
	dataOff := (indexOff + indexLen + pageSize - 1) / pageSize * pageSize

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(int64(dataOff), 0); err != nil {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	w := &Writer{
		path: path,
		tmp:  tmp,
		f:    f,
		bw:   bufio.NewWriterSize(f, 1<<20),
		hdr: Header{
			Version:    Version,
			Flags:      flagDigest,
			N:          uint64(n),
			BlockVerts: uint64(blockVerts),
			NumBlocks:  numBlocks,
			IndexOff:   indexOff,
			DataOff:    dataOff,
		},
		digest:  sha256.New(),
		offsets: make([]uint64, 0, numBlocks+1),
	}
	w.offsets = append(w.offsets, dataOff)
	var vb [binary.MaxVarintLen64]byte
	nw := binary.PutUvarint(vb[:], uint64(n))
	w.digest.Write(vb[:nw])
	return w, nil
}

// AddRow appends the next vertex's full sorted adjacency row. Rows arrive
// in vertex order; the row must be strictly ascending, in [0,n), and free
// of self-loops — the invariants every reader of the format relies on are
// enforced at write time, not trusted.
func (w *Writer) AddRow(row []int32) error {
	v := w.nextV
	if uint64(v) >= w.hdr.N {
		return fmt.Errorf("store: AddRow past declared vertex count %d", w.hdr.N)
	}
	prev := int32(-1)
	for _, u := range row {
		if u < 0 || uint64(u) >= w.hdr.N {
			return fmt.Errorf("store: vertex %d: neighbour %d out of range (n=%d)", v, u, w.hdr.N)
		}
		if u <= prev {
			return fmt.Errorf("store: vertex %d: adjacency not strictly ascending at %d", v, u)
		}
		if int(u) == v {
			return fmt.Errorf("store: self-loop on vertex %d", v)
		}
		prev = u
	}
	if d := uint64(len(row)); d > w.hdr.MaxDeg {
		w.hdr.MaxDeg = d
	}
	w.arcs += uint64(len(row))
	w.buf = appendRow(w.buf, row)
	w.nextV++
	if w.nextV%int(w.hdr.BlockVerts) == 0 {
		return w.flushBlock()
	}
	return nil
}

func (w *Writer) flushBlock() error {
	if _, err := w.bw.Write(w.buf); err != nil {
		return err
	}
	w.digest.Write(w.buf)
	w.written += uint64(len(w.buf))
	w.offsets = append(w.offsets, w.hdr.DataOff+w.written)
	w.buf = w.buf[:0]
	return nil
}

// Abort discards the partially written file.
func (w *Writer) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.f.Close()
	os.Remove(w.tmp)
}

// Finish seals the file: the last partial block and the index are
// flushed, the header (edge count, max degree, digest) is patched in,
// everything is fsynced and the temp file is renamed over path.
func (w *Writer) Finish() error {
	if w.done {
		return fmt.Errorf("store: Finish on a finished writer")
	}
	if uint64(w.nextV) != w.hdr.N {
		w.Abort()
		return fmt.Errorf("store: Finish after %d of %d rows", w.nextV, w.hdr.N)
	}
	if w.arcs%2 != 0 {
		w.Abort()
		return fmt.Errorf("store: adjacency is not symmetric (odd directed arc count %d)", w.arcs)
	}
	if w.hdr.N > 0 && w.hdr.N%w.hdr.BlockVerts != 0 {
		if err := w.flushBlock(); err != nil {
			w.Abort()
			return err
		}
	}
	if err := w.bw.Flush(); err != nil {
		w.Abort()
		return err
	}
	w.hdr.DataLen = w.written
	w.hdr.M = w.arcs / 2
	w.digest.Sum(w.hdr.Digest[:0])

	index := make([]byte, 8*len(w.offsets))
	for i, off := range w.offsets {
		binary.LittleEndian.PutUint64(index[8*i:], off)
	}
	if _, err := w.f.WriteAt(index, int64(w.hdr.IndexOff)); err != nil {
		w.Abort()
		return err
	}
	if _, err := w.f.WriteAt(w.hdr.encode(), 0); err != nil {
		w.Abort()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.Abort()
		return err
	}
	if err := w.f.Close(); err != nil {
		w.done = true
		os.Remove(w.tmp)
		return err
	}
	w.done = true
	if err := os.Rename(w.tmp, w.path); err != nil {
		os.Remove(w.tmp)
		return err
	}
	return syncDir(filepath.Dir(w.path))
}

// syncDir fsyncs a directory so a rename survives a crash. Best-effort:
// some filesystems refuse directory fsync.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync() //nolint:errcheck
	return nil
}

// WriteGraphFile exports any CSR source (an in-memory graph, typically)
// to a store file at path.
func WriteGraphFile(path string, g graph.CSR, blockVerts int) error {
	w, err := Create(path, g.N(), blockVerts)
	if err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if err := w.AddRow(g.Neighbors(v)); err != nil {
			w.Abort()
			return err
		}
	}
	return w.Finish()
}
