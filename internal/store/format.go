// Package store implements the on-disk graph store: a compact, versioned
// binary CSR format that opens in O(1) via mmap and pages adjacency in on
// demand, a bounded-memory streaming converter from edge-list text, and a
// persistent catalog directory that keeps graph digests, stats and warm
// enumeration prologues across restarts.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// File format (version 1), little-endian throughout.
//
// A .kpg file is three regions: a fixed-width header page, a page-aligned
// block index, and the adjacency blocks.
//
//	offset   size      field
//	──────   ────      ─────
//	0        8         magic "KPLXSTR1"
//	8        4         version (uint32) = 1
//	12       4         flags (uint32); bit 0: content digest present
//	16       8         n — vertex count (uint64)
//	24       8         m — undirected edge count (uint64)
//	32       8         blockVerts — vertices per adjacency block (uint64)
//	40       8         numBlocks = ceil(n / blockVerts) (uint64)
//	48       8         indexOff — file offset of the block index (uint64,
//	                   page-aligned)
//	56       8         dataOff — file offset of block 0 (uint64,
//	                   page-aligned)
//	64       8         dataLen — total encoded block bytes (uint64)
//	72       8         maxDeg — maximum vertex degree (uint64)
//	80       32        SHA-256 content digest (see below)
//	112      4         CRC-32C (Castagnoli) of header bytes [0,112)
//	116      ...4096   zero padding to one page
//
// Block index (at indexOff): numBlocks+1 uint64 file offsets. Entry b is
// the offset of block b's encoded bytes; the final entry equals
// dataOff+dataLen, so block b's encoded length is index[b+1]-index[b].
// The index is page-aligned and fixed-width, so locating any vertex's
// block is O(1) arithmetic on the mapping — no scan, no decode.
//
// Adjacency blocks (at dataOff): block b covers vertices
// [b*blockVerts, min(n, (b+1)*blockVerts)). For each vertex in order the
// block stores
//
//	uvarint  deg(v)
//	uvarint  neighbour deltas: with prev starting at 0, each entry is
//	         u-prev followed by prev=u — rows are sorted ascending, so
//	         every delta after the first is >= 1
//
// This per-row encoding is byte-identical to the canonical form hashed by
// graph.Digest, which is why the header digest of a store file equals
// graph.Digest of the same graph loaded in memory: the writer hashes
// uvarint(n) followed by exactly the block bytes it emits. Every digest
// consumer in the system (result cache, prepared-handle cache, job and
// cluster handshakes) therefore agrees on graph identity across the
// in-memory and on-disk representations, and opening a store file never
// needs to rehash the adjacency.
//
// Rows store the full adjacency (both directions of every edge), so
// sum(deg) = 2m and Neighbors(v) decodes from v's block alone.

const (
	// Version is the current format version. Readers reject files with a
	// greater version outright: forward compatibility is not attempted.
	Version = 1

	pageSize   = 4096
	headerSize = 116 // bytes actually used; the header region is one page

	// DefaultBlockVerts is the default number of vertices per adjacency
	// block: small enough that decoding one block on a point access stays
	// cheap, large enough that a sequential prologue scan amortizes the
	// per-block bookkeeping.
	DefaultBlockVerts = 2048

	flagDigest = 1 << 0
)

var magic = [8]byte{'K', 'P', 'L', 'X', 'S', 'T', 'R', '1'}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Header is the decoded fixed-width file header.
type Header struct {
	Version    uint32
	Flags      uint32
	N          uint64
	M          uint64
	BlockVerts uint64
	NumBlocks  uint64
	IndexOff   uint64
	DataOff    uint64
	DataLen    uint64
	MaxDeg     uint64
	Digest     [32]byte
}

// HasDigest reports whether the file carries a content digest.
func (h *Header) HasDigest() bool { return h.Flags&flagDigest != 0 }

// encode serialises h into a header page, including the trailing CRC.
func (h *Header) encode() []byte {
	buf := make([]byte, pageSize)
	copy(buf[0:8], magic[:])
	le := binary.LittleEndian
	le.PutUint32(buf[8:], h.Version)
	le.PutUint32(buf[12:], h.Flags)
	le.PutUint64(buf[16:], h.N)
	le.PutUint64(buf[24:], h.M)
	le.PutUint64(buf[32:], h.BlockVerts)
	le.PutUint64(buf[40:], h.NumBlocks)
	le.PutUint64(buf[48:], h.IndexOff)
	le.PutUint64(buf[56:], h.DataOff)
	le.PutUint64(buf[64:], h.DataLen)
	le.PutUint64(buf[72:], h.MaxDeg)
	copy(buf[80:112], h.Digest[:])
	le.PutUint32(buf[112:], crc32.Checksum(buf[:112], castagnoli))
	return buf
}

// decodeHeader parses and validates a header page. It checks magic,
// version, CRC and the internal consistency of every offset against the
// file size, so a truncated or bit-flipped file is rejected before any
// mmap access could fault.
func decodeHeader(data []byte, fileSize uint64) (Header, error) {
	var h Header
	if len(data) < headerSize {
		return h, fmt.Errorf("store: file too small for a header (%d bytes)", len(data))
	}
	if [8]byte(data[0:8]) != magic {
		return h, fmt.Errorf("store: not a kplex store file (magic %q)", data[0:8])
	}
	le := binary.LittleEndian
	if got, want := le.Uint32(data[112:]), crc32.Checksum(data[:112], castagnoli); got != want {
		return h, fmt.Errorf("store: header CRC mismatch (file %08x, computed %08x)", got, want)
	}
	h.Version = le.Uint32(data[8:])
	if h.Version > Version {
		return h, fmt.Errorf("store: file version %d is newer than this build supports (%d)", h.Version, Version)
	}
	if h.Version == 0 {
		return h, fmt.Errorf("store: invalid file version 0")
	}
	h.Flags = le.Uint32(data[12:])
	h.N = le.Uint64(data[16:])
	h.M = le.Uint64(data[24:])
	h.BlockVerts = le.Uint64(data[32:])
	h.NumBlocks = le.Uint64(data[40:])
	h.IndexOff = le.Uint64(data[48:])
	h.DataOff = le.Uint64(data[56:])
	h.DataLen = le.Uint64(data[64:])
	h.MaxDeg = le.Uint64(data[72:])
	copy(h.Digest[:], data[80:112])

	if h.N > 1<<31 {
		return h, fmt.Errorf("store: vertex count %d exceeds the int32 id space", h.N)
	}
	if h.BlockVerts == 0 {
		return h, fmt.Errorf("store: zero blockVerts")
	}
	if want := (h.N + h.BlockVerts - 1) / h.BlockVerts; h.NumBlocks != want {
		return h, fmt.Errorf("store: numBlocks %d inconsistent with n=%d blockVerts=%d (want %d)", h.NumBlocks, h.N, h.BlockVerts, want)
	}
	indexLen := 8 * (h.NumBlocks + 1)
	if h.IndexOff < pageSize || h.IndexOff%pageSize != 0 || h.IndexOff+indexLen > fileSize {
		return h, fmt.Errorf("store: block index [%d,%d) outside file of %d bytes", h.IndexOff, h.IndexOff+indexLen, fileSize)
	}
	if h.DataOff%pageSize != 0 || h.DataOff < h.IndexOff+indexLen {
		return h, fmt.Errorf("store: data region at %d overlaps the index", h.DataOff)
	}
	// An empty graph (n=0) has zero data bytes and the file legitimately
	// ends at the index; only a non-empty data region must lie inside it.
	if h.DataLen > 0 && h.DataOff+h.DataLen > fileSize {
		return h, fmt.Errorf("store: data region [%d,%d) outside file of %d bytes", h.DataOff, h.DataOff+h.DataLen, fileSize)
	}
	return h, nil
}

// decodedBlock is one adjacency block expanded to plain CSR slices. base
// is the first vertex the block covers; row i holds vertex base+i.
type decodedBlock struct {
	base    int32
	offsets []int32 // len = vertex count + 1
	adj     []int32
}

func (b *decodedBlock) row(v int) []int32 {
	i := v - int(b.base)
	return b.adj[b.offsets[i]:b.offsets[i+1]]
}

// decodeBlock expands the encoded bytes of a block covering cnt vertices
// starting at base. n bounds neighbour ids. Every structural invariant is
// checked — row length against remaining bytes, neighbour range, strict
// ascending order, no self-loops — so a corrupt or truncated block turns
// into an error instead of an out-of-range panic deeper in the engine.
func decodeBlock(enc []byte, base, cnt, n int) (*decodedBlock, error) {
	blk := &decodedBlock{
		base:    int32(base),
		offsets: make([]int32, cnt+1),
	}
	// First pass sizes adj exactly; uvarint decode is cheap enough that
	// two passes beat growing a slice through appends.
	total := 0
	pos := 0
	for i := 0; i < cnt; i++ {
		deg, w := uvarintStrict(enc[pos:])
		if w <= 0 {
			return nil, fmt.Errorf("store: block@%d: vertex %d: bad degree varint", base, base+i)
		}
		pos += w
		if deg > uint64(n) {
			return nil, fmt.Errorf("store: block@%d: vertex %d: degree %d exceeds n=%d", base, base+i, deg, n)
		}
		total += int(deg)
		for j := uint64(0); j < deg; j++ {
			_, w := uvarintStrict(enc[pos:])
			if w <= 0 {
				return nil, fmt.Errorf("store: block@%d: vertex %d: truncated adjacency", base, base+i)
			}
			pos += w
		}
	}
	if pos != len(enc) {
		return nil, fmt.Errorf("store: block@%d: %d trailing bytes after %d rows", base, len(enc)-pos, cnt)
	}
	blk.adj = make([]int32, total)
	pos = 0
	w0 := 0
	for i := 0; i < cnt; i++ {
		deg, w := binary.Uvarint(enc[pos:])
		pos += w
		blk.offsets[i] = int32(w0)
		prev := int64(-1)
		for j := uint64(0); j < deg; j++ {
			delta, w := binary.Uvarint(enc[pos:])
			pos += w
			var u int64
			if prev < 0 {
				u = int64(delta)
			} else {
				u = prev + int64(delta)
				if delta == 0 {
					return nil, fmt.Errorf("store: block@%d: vertex %d: duplicate neighbour %d", base, base+i, u)
				}
			}
			if u >= int64(n) {
				return nil, fmt.Errorf("store: block@%d: vertex %d: neighbour %d out of range (n=%d)", base, base+i, u, n)
			}
			if u == int64(base+i) {
				return nil, fmt.Errorf("store: block@%d: self-loop on vertex %d", base, u)
			}
			blk.adj[w0] = int32(u)
			w0++
			prev = u
		}
	}
	blk.offsets[cnt] = int32(w0)
	return blk, nil
}

// uvarintStrict is binary.Uvarint restricted to minimal encodings: an
// overlong varint (a value padded with continuation bytes, e.g. 0x80 0x00
// for zero) is rejected with w = 0. The block encoding must be canonical
// — exactly one byte string per block content — or the "hash the bytes
// you wrote" digest scheme would let two files with identical content
// carry different digests.
func uvarintStrict(enc []byte) (uint64, int) {
	v, w := binary.Uvarint(enc)
	if w > 1 && enc[w-1] == 0 {
		return 0, 0 // overlong: a minimal multi-byte varint never ends in 0x00
	}
	return v, w
}

// appendRow appends one vertex row (degree + deltas) to dst in the
// canonical encoding shared with graph.Digest. The row must be sorted
// ascending; prev starts at 0 exactly as computeDigest does.
func appendRow(dst []byte, row []int32) []byte {
	var buf [binary.MaxVarintLen64]byte
	w := binary.PutUvarint(buf[:], uint64(len(row)))
	dst = append(dst, buf[:w]...)
	prev := int32(0)
	for _, u := range row {
		w := binary.PutUvarint(buf[:], uint64(u-prev))
		dst = append(dst, buf[:w]...)
		prev = u
	}
	return dst
}
