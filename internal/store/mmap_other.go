//go:build !linux && !darwin

package store

import "os"

// mapFile falls back to reading the whole file on platforms without the
// mmap syscall surface this package targets. Correctness is identical;
// only the paging behaviour (and therefore the O(1) cold-open property)
// is lost.
func mapFile(f *os.File) ([]byte, func() error, error) {
	data, err := os.ReadFile(f.Name())
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
