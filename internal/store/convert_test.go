package store

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// edgeListOf renders g as a shuffled, duplicate-laden text edge list —
// the messy input shape conversion has to normalize.
func edgeListOf(g *graph.Graph, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var lines []string
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if int(u) > v {
				// Random orientation, occasional duplicates and self-loops.
				a, b := v, int(u)
				if rng.Intn(2) == 0 {
					a, b = b, a
				}
				lines = append(lines, fmt.Sprintf("%d\t%d", a, b))
				if rng.Intn(4) == 0 {
					lines = append(lines, fmt.Sprintf("%d %d", b, a))
				}
			}
		}
	}
	lines = append(lines, "7 7") // self-loop, dropped
	rng.Shuffle(len(lines), func(i, j int) { lines[i], lines[j] = lines[j], lines[i] })
	return "# comment header\n% another comment\n\n" + strings.Join(lines, "\n") + "\n"
}

func TestConvertMatchesInMemory(t *testing.T) {
	g := gen.ChungLu(800, 10, 2.4, 21)
	for _, sortBuf := range []int{0, 64, 1024} { // 0 = one giant run; small = many spill runs
		dst := filepath.Join(t.TempDir(), "c.kpg")
		info, err := ConvertEdgeList(strings.NewReader(edgeListOf(g, int64(sortBuf))), dst, ConvertOptions{
			SortBufArcs: sortBuf,
			BlockVerts:  32,
		})
		if err != nil {
			t.Fatalf("sortbuf=%d: %v", sortBuf, err)
		}
		if sortBuf == 64 && info.Runs < 10 {
			t.Errorf("sortbuf=64: only %d spill runs; external-sort path not exercised", info.Runs)
		}
		if info.N != g.N() || info.M != int64(g.M()) {
			t.Fatalf("sortbuf=%d: converted n=%d m=%d, want n=%d m=%d", sortBuf, info.N, info.M, g.N(), g.M())
		}
		r, err := OpenFile(dst)
		if err != nil {
			t.Fatal(err)
		}
		if r.StoredDigest() != graph.Digest(g) {
			t.Fatalf("sortbuf=%d: converted digest differs from in-memory graph", sortBuf)
		}
		if err := r.VerifyDigest(); err != nil {
			t.Errorf("sortbuf=%d: %v", sortBuf, err)
		}
		r.Close()
	}
}

func TestConvertIDGapsBecomeIsolatedVertices(t *testing.T) {
	dst := filepath.Join(t.TempDir(), "gaps.kpg")
	info, err := ConvertEdgeList(strings.NewReader("0 2\n5 9\n"), dst, ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.N != 10 || info.M != 2 {
		t.Fatalf("n=%d m=%d, want n=10 m=2", info.N, info.M)
	}
	r, err := OpenFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, v := range []int{1, 3, 4, 6, 7, 8} {
		if r.Degree(v) != 0 {
			t.Errorf("gap vertex %d has degree %d", v, r.Degree(v))
		}
	}
	if got := r.Neighbors(5); len(got) != 1 || got[0] != 9 {
		t.Errorf("Neighbors(5) = %v, want [9]", got)
	}
}

func TestConvertRejectsMalformedInput(t *testing.T) {
	for name, input := range map[string]string{
		"one-field":    "3\n",
		"alpha":        "a b\n",
		"negative-ish": "1 -2\n",
		"huge-id":      "1 4294967296\n",
	} {
		dst := filepath.Join(t.TempDir(), "bad.kpg")
		if _, err := ConvertEdgeList(strings.NewReader(input), dst, ConvertOptions{}); err == nil {
			t.Errorf("%s: conversion accepted %q", name, input)
		}
	}
}

func TestConvertEmptyInput(t *testing.T) {
	dst := filepath.Join(t.TempDir(), "empty.kpg")
	info, err := ConvertEdgeList(strings.NewReader("# nothing\n"), dst, ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.N != 0 || info.M != 0 {
		t.Fatalf("n=%d m=%d, want empty", info.N, info.M)
	}
	r, err := OpenFile(dst)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
}
