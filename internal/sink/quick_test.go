package sink

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Any set of sorted vertex lists survives both formats bit-for-bit.
func TestQuickRoundTrips(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		want := randomPlexes(rng, 1+rng.Intn(80))

		var tb bytes.Buffer
		tw := NewTextWriter(&tb)
		for _, p := range want {
			if tw.Write(p) != nil {
				return false
			}
		}
		if tw.Close() != nil {
			return false
		}
		gotT, err := ReadAll(&tb)
		if err != nil || !Equal(gotT, want) {
			return false
		}

		var bb bytes.Buffer
		bw, err := NewBinaryWriter(&bb)
		if err != nil {
			return false
		}
		for _, p := range want {
			if bw.Write(p) != nil {
				return false
			}
		}
		if bw.Close() != nil {
			return false
		}
		gotB, err := ReadAll(&bb)
		return err == nil && Equal(gotB, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Equal is an equivalence relation on shuffles: any permutation of a result
// set compares equal, and changing one vertex breaks equality.
func TestQuickEqualUnderPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomPlexes(rng, 2+rng.Intn(40))
		b := make([][]int, len(a))
		copy(b, a)
		rng.Shuffle(len(b), func(i, j int) { b[i], b[j] = b[j], b[i] })
		if !Equal(a, b) {
			return false
		}
		// Mutate one entry of one plex.
		c := make([][]int, len(a))
		for i, p := range a {
			c[i] = append([]int(nil), p...)
		}
		c[rng.Intn(len(c))][0] += 1000000
		return !Equal(a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
