package sink

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestStreamDeliversInOrder(t *testing.T) {
	s := NewStream(4)
	go func() {
		for i := 0; i < 10; i++ {
			if !s.Emit([]int{i, i + 1}) {
				t.Error("Emit returned false on a live stream")
				break
			}
		}
		s.Close(nil)
	}()
	i := 0
	for p := range s.C() {
		if p[0] != i || p[1] != i+1 {
			t.Fatalf("plex %d = %v", i, p)
		}
		i++
	}
	if i != 10 {
		t.Fatalf("received %d plexes, want 10", i)
	}
	if s.Err() != nil {
		t.Errorf("Err = %v, want nil", s.Err())
	}
}

func TestStreamEmitCopies(t *testing.T) {
	s := NewStream(1)
	buf := []int{1, 2, 3}
	s.Emit(buf)
	buf[0] = 99 // producer reuses its buffer, as the engine's workers do
	got := <-s.C()
	if got[0] != 1 {
		t.Errorf("Emit aliased the producer's buffer: %v", got)
	}
	s.Close(nil)
}

// Cancel must unblock a producer stuck on a full channel, and every later
// Emit must fail fast.
func TestStreamCancelUnblocksEmit(t *testing.T) {
	s := NewStream(1)
	s.Emit([]int{1}) // fills the buffer
	unblocked := make(chan bool)
	go func() { unblocked <- s.Emit([]int{2}) }()
	select {
	case <-unblocked:
		t.Fatal("Emit returned with a full channel and no consumer")
	case <-time.After(20 * time.Millisecond):
	}
	s.Cancel()
	select {
	case ok := <-unblocked:
		if ok {
			t.Error("Emit reported success after Cancel")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Cancel did not unblock Emit")
	}
	if s.Emit([]int{3}) {
		t.Error("Emit succeeded on a cancelled stream")
	}
	s.Cancel() // idempotent
	s.Close(nil)
}

func TestStreamCloseRecordsError(t *testing.T) {
	s := NewStream(0)
	want := errors.New("boom")
	s.Close(want)
	if _, ok := <-s.C(); ok {
		t.Fatal("channel open after Close")
	}
	if !errors.Is(s.Err(), want) {
		t.Errorf("Err = %v, want %v", s.Err(), want)
	}
}

// Concurrent producers with a cancelling consumer: no panic, no deadlock,
// and everything delivered before the cancel is intact.
func TestStreamConcurrentEmitAndCancel(t *testing.T) {
	s := NewStream(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if !s.Emit([]int{base, i}) {
					return
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		<-s.C()
	}
	s.Cancel()
	wg.Wait()
	s.Close(nil)
	for range s.C() { // drain the buffered tail
	}
}
