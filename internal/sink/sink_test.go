package sink

import (
	"bytes"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func randomPlexes(rng *rand.Rand, n int) [][]int {
	out := make([][]int, n)
	for i := range out {
		size := 1 + rng.Intn(12)
		set := map[int]bool{}
		for len(set) < size {
			set[rng.Intn(100000)] = true
		}
		p := make([]int, 0, size)
		for v := range set {
			p = append(p, v)
		}
		// Sort ascending as the writer contract requires.
		for x := 1; x < len(p); x++ {
			for y := x; y > 0 && p[y-1] > p[y]; y-- {
				p[y-1], p[y] = p[y], p[y-1]
			}
		}
		out[i] = p
	}
	return out
}

func TestTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	want := randomPlexes(rng, 200)
	var buf bytes.Buffer
	w := NewTextWriter(&buf)
	for _, p := range want {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 200 {
		t.Errorf("Count = %d, want 200", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, want) {
		t.Error("text round trip changed the result set")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	want := randomPlexes(rng, 300)
	var buf bytes.Buffer
	w, err := NewBinaryWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range want {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, want) {
		t.Error("binary round trip changed the result set")
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	plexes := randomPlexes(rng, 500)
	var tb, bb bytes.Buffer
	tw := NewTextWriter(&tb)
	bw, _ := NewBinaryWriter(&bb)
	for _, p := range plexes {
		tw.Write(p) //nolint:errcheck
		bw.Write(p) //nolint:errcheck
	}
	tw.Close() //nolint:errcheck
	bw.Close() //nolint:errcheck
	if bb.Len() >= tb.Len() {
		t.Errorf("binary (%d bytes) not smaller than text (%d bytes)", bb.Len(), tb.Len())
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	w := NewTextWriter(&bytes.Buffer{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write([]int{1, 2}); err == nil {
		t.Error("expected error writing after close")
	}
}

func TestConcurrentWrites(t *testing.T) {
	var buf bytes.Buffer
	w := NewTextWriter(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				w.Write([]int{base, base + 1, base + i + 2}) //nolint:errcheck
			}
		}(g * 1000)
	}
	wg.Wait()
	if w.Count() != 800 {
		t.Errorf("Count = %d, want 800", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 800 {
		t.Errorf("read %d plexes, want 800", len(got))
	}
}

func TestReadTextErrors(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("1 2 x\n")); err == nil {
		t.Error("expected parse error")
	}
	got, err := ReadAll(strings.NewReader("\n\n  \n"))
	if err != nil || len(got) != 0 {
		t.Errorf("blank input: got %v, %v", got, err)
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewBinaryWriter(&buf)
	w.Write([]int{5, 9, 12}) //nolint:errcheck
	w.Close()                //nolint:errcheck
	data := buf.Bytes()
	if _, err := ReadAll(bytes.NewReader(data[:len(data)-1])); err == nil {
		t.Error("expected truncation error")
	}
}

func TestEqualAndSort(t *testing.T) {
	a := [][]int{{1, 2, 3}, {4, 5}}
	b := [][]int{{4, 5}, {1, 2, 3}}
	if !Equal(a, b) {
		t.Error("Equal should ignore order")
	}
	c := [][]int{{1, 2, 3}, {4, 6}}
	if Equal(a, c) {
		t.Error("Equal should detect differing plexes")
	}
	if Equal(a, a[:1]) {
		t.Error("Equal should detect differing lengths")
	}
	// Duplicate multiplicity matters.
	d := [][]int{{1, 2}, {1, 2}}
	e := [][]int{{1, 2}, {3, 4}}
	if Equal(d, e) {
		t.Error("Equal should respect multiplicity")
	}

	s := [][]int{{2, 3}, {1, 2, 3}, {1, 2}}
	SortPlexes(s)
	if len(s[0]) != 3 || s[1][0] != 1 || s[2][0] != 2 {
		t.Errorf("SortPlexes order wrong: %v", s)
	}
}

func TestVerifyReportString(t *testing.T) {
	rep := Report{Total: 3, MinSize: 2, MaxSize: 5}
	if !strings.HasPrefix(rep.String(), "OK") {
		t.Errorf("clean report should start with OK: %s", rep)
	}
	rep.NotKPlex = 1
	if !strings.HasPrefix(rep.String(), "FAILED") {
		t.Errorf("dirty report should start with FAILED: %s", rep)
	}
}
