package sink_test

// End-to-end verification: run the real enumerator and check its output
// with sink.Verify. This lives in the external test package because the
// engine (internal/kplex) imports sink for its streaming path; an internal
// test importing the engine back would be a cycle.

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/kplex"
	"repro/internal/sink"
)

func TestVerifyEndToEnd(t *testing.T) {
	g := gen.Planted(gen.PlantedConfig{
		N: 80, BackgroundP: 0.02, Communities: 5, CommSize: 10,
		DropPerV: 1, Overlap: 2, Seed: 9,
	})
	k, q := 2, 6
	var plexes [][]int
	opts := kplex.NewOptions(k, q)
	opts.OnPlex = func(p []int) { plexes = append(plexes, append([]int(nil), p...)) }
	if _, err := kplex.Run(context.Background(), g, opts); err != nil {
		t.Fatal(err)
	}
	if len(plexes) == 0 {
		t.Fatal("no plexes to verify")
	}
	rep := sink.Verify(g, plexes, k, q)
	if !rep.OK() {
		t.Errorf("clean result set failed verification: %s", rep)
	}

	// Now sabotage the set in every way the report tracks.
	bad := append([][]int{}, plexes...)
	bad = append(bad, plexes[0])                    // duplicate
	bad = append(bad, []int{3, 2, 1})               // unsorted
	bad = append(bad, []int{0, g.N() + 5})          // out of range
	bad = append(bad, plexes[0][:len(plexes[0])-1]) // subset: not maximal (and small)
	rep = sink.Verify(g, bad, k, q)
	if rep.OK() {
		t.Error("sabotaged set passed verification")
	}
	if rep.Duplicates != 1 || rep.NotSorted != 1 || rep.OutOfRange != 1 {
		t.Errorf("unexpected report: %s", rep)
	}
}
