// Package sink streams enumeration results to disk and reads them back.
// The paper's workloads emit up to billions of maximal k-plexes, so results
// are written as they arrive (the OnPlex callback) rather than collected:
// a text format for interoperability and a delta-varint binary format that
// is several times smaller. The package also verifies result files — every
// set a k-plex, maximal, large enough, and no duplicates — which is how the
// paper's "all three algorithms return the same result set" check is
// mechanised here.
package sink

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// magic identifies the binary result format; the last byte is the version.
var magic = [8]byte{'K', 'P', 'L', 'X', 'R', 'E', 'S', 1}

// Writer streams k-plexes to an io.Writer. It is safe for concurrent use by
// multiple enumeration workers. Close flushes buffered data; the underlying
// writer is not closed.
type Writer struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	binary bool
	count  int64
	err    error
	buf    []byte
}

// NewTextWriter returns a Writer emitting one sorted "v1 v2 v3" line per
// plex.
func NewTextWriter(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16)}
}

// NewBinaryWriter returns a Writer emitting the compact binary format:
// the magic header, then per plex a uvarint length followed by uvarint
// deltas of the sorted vertex ids.
func NewBinaryWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	return &Writer{bw: bw, binary: true}, nil
}

// Write records one plex. The slice is not retained; it must be sorted
// ascending (the enumerator's OnPlex contract already guarantees this).
func (w *Writer) Write(p []int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if w.binary {
		w.buf = w.buf[:0]
		w.buf = binary.AppendUvarint(w.buf, uint64(len(p)))
		prev := 0
		for _, v := range p {
			w.buf = binary.AppendUvarint(w.buf, uint64(v-prev))
			prev = v
		}
		_, w.err = w.bw.Write(w.buf)
	} else {
		w.buf = w.buf[:0]
		for i, v := range p {
			if i > 0 {
				w.buf = append(w.buf, ' ')
			}
			w.buf = strconv.AppendInt(w.buf, int64(v), 10)
		}
		w.buf = append(w.buf, '\n')
		_, w.err = w.bw.Write(w.buf)
	}
	if w.err == nil {
		w.count++
	}
	return w.err
}

// Count returns the number of plexes written so far.
func (w *Writer) Count() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// errClosed poisons a Writer after Close so later Writes fail loudly.
var errClosed = fmt.Errorf("sink: writer closed")

// Close flushes the writer. Further Writes fail. The underlying io.Writer
// is not closed.
func (w *Writer) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = err
		return err
	}
	w.err = errClosed
	return nil
}

// ReadAll parses a result stream in either format (auto-detected from the
// magic bytes) and returns the plexes.
func ReadAll(r io.Reader) ([][]int, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(len(magic))
	if err == nil && string(head) == string(magic[:]) {
		return readBinary(br)
	}
	return readText(br)
}

func readBinary(br *bufio.Reader) ([][]int, error) {
	if _, err := br.Discard(len(magic)); err != nil {
		return nil, err
	}
	var out [][]int
	for {
		n, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("sink: plex %d: %w", len(out), err)
		}
		if n == 0 || n > 1<<30 {
			return nil, fmt.Errorf("sink: plex %d: invalid length %d", len(out), n)
		}
		p := make([]int, n)
		prev := uint64(0)
		for i := range p {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("sink: plex %d: truncated: %w", len(out), err)
			}
			prev += d
			p[i] = int(prev)
		}
		out = append(out, p)
	}
}

func readText(br *bufio.Reader) ([][]int, error) {
	var out [][]int
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields := splitFields(sc.Bytes())
		if len(fields) == 0 {
			continue
		}
		p := make([]int, len(fields))
		for i, f := range fields {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("sink: line %d: %w", lineNo, err)
			}
			p[i] = v
		}
		out = append(out, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func splitFields(line []byte) []string {
	var out []string
	i := 0
	for i < len(line) {
		for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
			i++
		}
		start := i
		for i < len(line) && line[i] != ' ' && line[i] != '\t' && line[i] != '\r' {
			i++
		}
		if i > start {
			out = append(out, string(line[start:i]))
		}
	}
	return out
}

// Key canonicalises a plex for duplicate detection. The input must be
// sorted.
func Key(p []int) string {
	buf := make([]byte, 0, len(p)*6)
	for i, v := range p {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(v), 10)
	}
	return string(buf)
}

// SortPlexes orders a result set canonically: by size descending, then
// lexicographically ascending — the order the comparison tooling uses.
func SortPlexes(plexes [][]int) {
	sort.Slice(plexes, func(i, j int) bool {
		a, b := plexes[i], plexes[j]
		if len(a) != len(b) {
			return len(a) > len(b)
		}
		for x := 0; x < len(a); x++ {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
}

// Equal reports whether two result sets contain the same plexes,
// irrespective of order. Inputs are not modified.
func Equal(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[string]int, len(a))
	for _, p := range a {
		seen[Key(p)]++
	}
	for _, p := range b {
		k := Key(p)
		if seen[k] == 0 {
			return false
		}
		seen[k]--
	}
	return true
}
