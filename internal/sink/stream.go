package sink

// Stream is the in-memory counterpart of Writer: a bounded, channel-backed
// sink that hands each plex to exactly one consumer as it is found, instead
// of materialising the result set. It is the transport under the engine's
// streaming path (kplex.RunStream / the root EnumerateStream API) and the
// kplexd stream endpoint.
//
// The contract has three parties:
//
//   - Producers (enumeration workers) call Emit concurrently. Emit blocks
//     while the buffer is full — this is the backpressure that keeps a slow
//     consumer from forcing the engine to buffer billions of plexes — and
//     returns false once the stream is cancelled, letting workers stop
//     copying results nobody will read.
//   - The single owner calls Close exactly once, after every producer has
//     finished, recording the run's terminal error and closing the channel.
//   - The consumer ranges over C until it is closed, or walks away by
//     calling Cancel (dropping an HTTP client does this via context
//     plumbing). Cancel unblocks every producer stuck in Emit.

import "sync"

// Stream is a bounded channel-backed result sink. The zero value is not
// usable; call NewStream.
type Stream struct {
	ch   chan []int
	done chan struct{} // closed by Cancel; unblocks producers

	cancelOnce sync.Once
	closeOnce  sync.Once

	mu  sync.Mutex
	err error // terminal run error, set by Close
}

// NewStream returns a Stream whose channel buffers up to buf plexes
// (buf < 1 means an unbuffered channel).
func NewStream(buf int) *Stream {
	if buf < 0 {
		buf = 0
	}
	return &Stream{
		ch:   make(chan []int, buf),
		done: make(chan struct{}),
	}
}

// C returns the receive side. It is closed by Close, after which Err
// reports how the run ended.
func (s *Stream) C() <-chan []int { return s.ch }

// Emit copies p and delivers it to the consumer, blocking while the buffer
// is full. It reports false when the stream has been cancelled; producers
// should then stop emitting (the enumeration engine translates this into
// its stop flag). Safe for concurrent use.
func (s *Stream) Emit(p []int) bool {
	select {
	case <-s.done:
		return false
	default:
	}
	cp := append([]int(nil), p...)
	select {
	case s.ch <- cp:
		return true
	case <-s.done:
		return false
	}
}

// Cancel abandons the stream from the consumer side: every current and
// future Emit returns false without blocking. Idempotent; safe to call
// concurrently with Emit and Close.
func (s *Stream) Cancel() {
	s.cancelOnce.Do(func() { close(s.done) })
}

// Done is closed when the stream has been cancelled.
func (s *Stream) Done() <-chan struct{} { return s.done }

// Close records the run's terminal error and closes the channel. It must be
// called exactly once, by the producer side, after all Emit calls have
// returned.
func (s *Stream) Close(err error) {
	s.mu.Lock()
	s.err = err
	s.mu.Unlock()
	s.closeOnce.Do(func() { close(s.ch) })
}

// Err returns the terminal error recorded by Close. It is meaningful only
// after C has been closed.
func (s *Stream) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
