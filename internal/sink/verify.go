package sink

import (
	"fmt"

	"repro/internal/graph"
)

// Report summarises the verification of a result set against a graph.
type Report struct {
	Total      int
	MinSize    int // smallest plex seen (0 when empty)
	MaxSize    int
	Duplicates int
	NotSorted  int // plexes whose vertex list is not strictly ascending
	NotKPlex   int
	NotMaximal int
	TooSmall   int // below the q threshold
	OutOfRange int // vertex id outside the graph
}

// OK reports whether the result set passed every check.
func (r Report) OK() bool {
	return r.Duplicates == 0 && r.NotSorted == 0 && r.NotKPlex == 0 &&
		r.NotMaximal == 0 && r.TooSmall == 0 && r.OutOfRange == 0
}

// String renders the report as a short human-readable summary.
func (r Report) String() string {
	status := "OK"
	if !r.OK() {
		status = "FAILED"
	}
	return fmt.Sprintf(
		"%s: %d plexes (sizes %d..%d), dup=%d unsorted=%d non-kplex=%d non-maximal=%d small=%d out-of-range=%d",
		status, r.Total, r.MinSize, r.MaxSize, r.Duplicates, r.NotSorted,
		r.NotKPlex, r.NotMaximal, r.TooSmall, r.OutOfRange)
}

// Verify checks every plex in the result set against g: vertex ids in
// range, strictly ascending, at least q vertices, a k-plex, maximal, and
// globally duplicate-free.
func Verify(g *graph.Graph, plexes [][]int, k, q int) Report {
	rep := Report{Total: len(plexes)}
	seen := make(map[string]bool, len(plexes))
	for _, p := range plexes {
		if rep.MinSize == 0 || len(p) < rep.MinSize {
			rep.MinSize = len(p)
		}
		if len(p) > rep.MaxSize {
			rep.MaxSize = len(p)
		}
		bad := false
		for i, v := range p {
			if v < 0 || v >= g.N() {
				rep.OutOfRange++
				bad = true
				break
			}
			if i > 0 && p[i-1] >= v {
				rep.NotSorted++
				bad = true
				break
			}
		}
		if bad {
			continue
		}
		key := Key(p)
		if seen[key] {
			rep.Duplicates++
			continue
		}
		seen[key] = true
		if len(p) < q {
			rep.TooSmall++
		}
		switch {
		case !graph.IsKPlex(g, p, k):
			rep.NotKPlex++
		case !graph.IsMaximalKPlex(g, p, k):
			rep.NotMaximal++
		}
	}
	return rep
}
