package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/kplex"
)

// Algo names one algorithm configuration under comparison.
type Algo struct {
	Name string
	Opts func(k, q int) kplex.Options
}

// SequentialAlgos returns the four algorithms of the paper's Table 3, in
// the paper's column order.
func SequentialAlgos() []Algo {
	return []Algo{
		{"FP", baseline.FPOptions},
		{"ListPlex", baseline.ListPlexOptions},
		{"Ours_P", func(k, q int) kplex.Options {
			o := kplex.NewOptions(k, q)
			o.Branching = kplex.BranchFaPlexen
			return o
		}},
		{"Ours", kplex.NewOptions},
	}
}

// AblationUBAlgos returns the Table 5 variants.
func AblationUBAlgos() []Algo {
	return []Algo{
		{"Ours\\ub", func(k, q int) kplex.Options {
			o := kplex.NewOptions(k, q)
			o.UpperBound = kplex.UBNone
			return o
		}},
		{"Ours\\ub+fp", func(k, q int) kplex.Options {
			o := kplex.NewOptions(k, q)
			o.UpperBound = kplex.UBSortFP
			return o
		}},
		{"Ours", kplex.NewOptions},
	}
}

// AblationRuleAlgos returns the Table 6 variants.
func AblationRuleAlgos() []Algo {
	return []Algo{
		{"Basic", kplex.BasicOptions},
		{"Basic+R1", func(k, q int) kplex.Options {
			o := kplex.BasicOptions(k, q)
			o.UseSubtaskBound = true
			return o
		}},
		{"Basic+R2", func(k, q int) kplex.Options {
			o := kplex.BasicOptions(k, q)
			o.UsePairPruning = true
			return o
		}},
		{"Ours", kplex.NewOptions},
	}
}

// SchedulerVariant names one parallel work-distribution scheme of the
// scheduler ablation (TableScheduler, Figure8).
type SchedulerVariant struct {
	Name  string
	Style kplex.SchedulerStyle
}

// SchedulerVariants returns the scheduler ablation grid in display order:
// the paper's stage scheme, the global-queue strawman, and the
// work-stealing extension.
func SchedulerVariants() []SchedulerVariant {
	return []SchedulerVariant{
		{"stages", kplex.SchedulerStages},
		{"global", kplex.SchedulerGlobalQueue},
		{"steal", kplex.SchedulerSteal},
	}
}

// Measurement is one timed enumeration.
type Measurement struct {
	Count    int64
	Elapsed  time.Duration
	PeakHeap uint64 // bytes; only filled by RunMeasured
	TimedOut bool   // only set by RunWithTimeout
	Stats    kplex.Stats
}

// Run executes one algorithm configuration on g and reports the result.
func Run(g *graph.Graph, opts kplex.Options) (Measurement, error) {
	res, err := kplex.Run(context.Background(), g, opts)
	if err != nil {
		return Measurement{}, err
	}
	return Measurement{Count: res.Count, Elapsed: res.Elapsed, Stats: res.Stats}, nil
}

// RunWithTimeout is Run with a wall-clock cap. TimedOut is set (with no
// error) when the cap was hit; the measurement then holds the partial
// count. The paper's Table 4 reports FP as FAIL on uk-2005 — the large
// hub-heavy graphs can blow up the baselines, and the harness reports
// "T/O" rather than hanging.
func RunWithTimeout(g *graph.Graph, opts kplex.Options, limit time.Duration) (Measurement, error) {
	ctx, cancel := context.WithTimeout(context.Background(), limit)
	defer cancel()
	res, err := kplex.Run(ctx, g, opts)
	m := Measurement{Count: res.Count, Elapsed: res.Elapsed, Stats: res.Stats}
	if err != nil {
		if ctx.Err() != nil {
			m.TimedOut = true
			return m, nil
		}
		return m, err
	}
	return m, nil
}

// RunMeasured is Run plus peak-heap sampling (for the Table 7 memory
// comparison). The sampler polls MemStats at 2ms granularity, which is
// coarse but mirrors how the paper measures peak RSS externally.
func RunMeasured(g *graph.Graph, opts kplex.Options) (Measurement, error) {
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	var peak atomic.Uint64
	stop := make(chan struct{})
	donePolling := make(chan struct{})
	go func() {
		defer close(donePolling)
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			default:
			}
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	m, err := Run(g, opts)
	close(stop)
	<-donePolling
	if err != nil {
		return m, err
	}
	p := peak.Load()
	if p > base.HeapAlloc {
		m.PeakHeap = p - base.HeapAlloc
	}
	return m, nil
}

// FormatDuration renders a duration the way the paper's tables do
// (seconds with two decimals).
func FormatDuration(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds())
}

// Config tunes how much work the table/figure runners do.
type Config struct {
	// Quick restricts every runner to a representative subset of datasets
	// and parameters so the whole suite finishes in roughly a minute. The
	// full mode regenerates every row.
	Quick bool
	// Threads is the parallel worker count used by the parallel
	// experiments; 0 means min(16, GOMAXPROCS) as in the paper's setup.
	Threads int
	// Out receives the formatted tables.
	Out io.Writer
}

func (c *Config) threads() int {
	if c.Threads > 0 {
		return c.Threads
	}
	t := runtime.GOMAXPROCS(0)
	if t > 16 {
		t = 16
	}
	if t < 1 {
		t = 1
	}
	return t
}

func (c *Config) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}
