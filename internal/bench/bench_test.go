package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/kplex"
)

func TestSuiteWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range Suite() {
		if seen[d.Name] {
			t.Fatalf("duplicate dataset %s", d.Name)
		}
		seen[d.Name] = true
		if d.Analog == "" || d.Build == nil || len(d.Params) == 0 {
			t.Fatalf("dataset %s incomplete", d.Name)
		}
		for _, kq := range d.Params {
			o := kplex.NewOptions(kq.K, kq.Q)
			if err := o.Validate(); err != nil {
				t.Fatalf("dataset %s params %+v invalid: %v", d.Name, kq, err)
			}
		}
		if !strings.Contains(d.String(), d.Name) {
			t.Fatalf("String() = %q", d.String())
		}
	}
	if _, ok := ByName("jazz-syn"); !ok {
		t.Fatal("ByName failed for jazz-syn")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName found a ghost")
	}
	if len(Names()) != len(Suite()) {
		t.Fatal("Names() length mismatch")
	}
	if len(ByClass(Small))+len(ByClass(Medium))+len(ByClass(Large))+len(ByClass(Stress)) != len(Suite()) {
		t.Fatal("classes do not partition the suite")
	}
}

func TestSuiteDeterministicBuilds(t *testing.T) {
	for _, d := range ByClass(Small) {
		a, b := d.Build(), d.Build()
		if a.N() != b.N() || a.M() != b.M() {
			t.Fatalf("%s not deterministic", d.Name)
		}
	}
}

func TestAlgoFamilies(t *testing.T) {
	if got := len(SequentialAlgos()); got != 4 {
		t.Fatalf("SequentialAlgos = %d, want 4", got)
	}
	if got := len(AblationUBAlgos()); got != 3 {
		t.Fatalf("AblationUBAlgos = %d, want 3", got)
	}
	if got := len(AblationRuleAlgos()); got != 4 {
		t.Fatalf("AblationRuleAlgos = %d, want 4", got)
	}
	// Every produced option set must validate.
	for _, fam := range [][]Algo{SequentialAlgos(), AblationUBAlgos(), AblationRuleAlgos()} {
		for _, a := range fam {
			o := a.Opts(2, 8)
			if err := o.Validate(); err != nil {
				t.Fatalf("%s options invalid: %v", a.Name, err)
			}
		}
	}
	if got := len(SchedulerVariants()); got != 3 {
		t.Fatalf("SchedulerVariants = %d, want 3", got)
	}
	for _, v := range SchedulerVariants() {
		o := kplex.NewOptions(2, 8)
		o.Scheduler = v.Style
		if err := o.Validate(); err != nil {
			t.Fatalf("scheduler %s options invalid: %v", v.Name, err)
		}
	}
}

func TestRunAndRunMeasured(t *testing.T) {
	d, _ := ByName("jazz-syn")
	g := d.Build()
	kq := d.Params[0]
	m, err := Run(g, kplex.NewOptions(kq.K, kq.Q))
	if err != nil {
		t.Fatal(err)
	}
	if m.Count <= 0 {
		t.Fatalf("jazz-syn %+v produced %d plexes; params need recalibration", kq, m.Count)
	}
	mm, err := RunMeasured(g, kplex.NewOptions(kq.K, kq.Q))
	if err != nil {
		t.Fatal(err)
	}
	if mm.Count != m.Count {
		t.Fatalf("measured run count %d != %d", mm.Count, m.Count)
	}
}

func TestFormatDuration(t *testing.T) {
	if got := FormatDuration(1234 * time.Millisecond); got != "1.23" {
		t.Fatalf("FormatDuration = %q", got)
	}
}

func TestConfigThreads(t *testing.T) {
	c := &Config{}
	if c.threads() < 1 || c.threads() > 16 {
		t.Fatalf("default threads = %d", c.threads())
	}
	c.Threads = 3
	if c.threads() != 3 {
		t.Fatalf("explicit threads = %d", c.threads())
	}
}

// TestQuickTable2 smoke-tests the cheapest runner end to end.
func TestQuickTable2(t *testing.T) {
	var sb strings.Builder
	c := &Config{Quick: true, Out: &sb}
	if err := c.Table2(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"jazz-syn", "Δ", "pokec-syn"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table2 output missing %q:\n%s", want, out)
		}
	}
}
