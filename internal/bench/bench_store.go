package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kplex"
	"repro/internal/store"
)

// The out-of-core store benchmark: what the .kpg format costs and buys.
// Four measurements per graph, mirroring the serving paths kplexd takes:
// streaming conversion throughput with its bounded-memory guarantee (peak
// heap during an external-sort convert must track the sort buffer, not
// m), the compression ratio against edge-list text, the O(1) cold-open
// latency of the mmap reader (the whole point of the format: no parse on
// restart), and warm-vs-cold prologue time (loading a persisted prepared
// handle versus recomputing it — the catalog's warm-start path).

// StoreBenchCell is one graph's measurements.
type StoreBenchCell struct {
	Graph string `json:"graph"`
	N     int    `json:"n"`
	M     int64  `json:"m"`

	// Conversion (text edge list -> .kpg via the external sort).
	ConvertMS    float64 `json:"convertMs"`
	Runs         int     `json:"runs"` // spill runs merged (>1 = truly external)
	PeakHeapMiB  float64 `json:"peakHeapMiB"`
	TextBytes    int64   `json:"textBytes"`
	StoreBytes   int64   `json:"storeBytes"`
	BytesPerEdge float64 `json:"bytesPerEdge"` // store bytes / m
	Ratio        float64 `json:"ratioVsText"`  // text / store

	// Reader.
	ColdOpenUS float64 `json:"coldOpenUs"` // OpenFile: header+index validation only
	FullScanMS float64 `json:"fullScanMs"` // decode every block once

	// Prologue persistence (k=2, q=6 cell).
	PrologueColdMS float64 `json:"prologueColdMs"` // kplex.Prepare from the reader
	PrologueWarmMS float64 `json:"prologueWarmMs"` // UnmarshalPrepared of the persisted frame
	WarmSpeedup    float64 `json:"warmSpeedup"`
}

// StoreBenchReport is the BENCH_store.json document.
type StoreBenchReport struct {
	Tool         string           `json:"tool"`
	Reps         int              `json:"reps"`
	SortBufArcs  int              `json:"sortBufArcs"`
	Cells        []StoreBenchCell `json:"cells"`
	MaxHeapMiB   float64          `json:"maxPeakHeapMiB"`
	MeanRatio    float64          `json:"meanRatioVsText"`
	MeanWarmSpup float64          `json:"meanWarmSpeedup"`
}

// storeBenchGraphs are sized so the smallest sort buffer still spills
// dozens of runs — the external path, not the in-memory fast path.
func storeBenchGraphs(quick bool) []gen.CorpusGraph {
	gs := []gen.CorpusGraph{
		{Name: "ba-50k", Build: func() *graph.Graph { return gen.BarabasiAlbert(50_000, 8, 7) }},
		{Name: "chunglu-80k", Build: func() *graph.Graph { return gen.ChungLu(80_000, 10, 2.3, 8) }},
		{Name: "gnp-20k", Build: func() *graph.Graph { return gen.GNP(20_000, 0.002, 9) }},
	}
	if quick {
		return gs[:1]
	}
	return gs
}

// peakHeapDuring samples runtime.MemStats.HeapAlloc at 1ms while fn runs
// and returns the peak observed, in bytes. Sampling (rather than a single
// after-the-fact ReadMemStats) is what makes the bounded-RSS claim
// observable: the converter's working set exists only mid-merge.
func peakHeapDuring(fn func() error) (uint64, error) {
	var peak atomic.Uint64
	done := make(chan struct{})
	go func() {
		var ms runtime.MemStats
		t := time.NewTicker(time.Millisecond)
		defer t.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			select {
			case <-done:
				return
			case <-t.C:
			}
		}
	}()
	err := fn()
	close(done)
	return peak.Load(), err
}

// StoreBench measures the store layer and writes BENCH_store.json.
func (c *Config) StoreBench(jsonPath string) error {
	reps := 5
	if c.Quick {
		reps = 3
	}
	const sortBufArcs = 1 << 16 // 64Ki arcs = 512 KiB run buffer: forces real spills

	dir, err := os.MkdirTemp("", "kplexbench-store-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	c.printf("Graph store: convert / compression / cold open / warm prologue (min of %d reps)\n", reps)
	c.printf("%-12s %8s %9s %6s %9s %7s %7s %10s %10s %9s %9s %8s\n",
		"graph", "n", "m", "runs", "convertMs", "heapMiB", "B/edge", "vs-text", "openUs", "coldMs", "warmMs", "speedup")

	report := StoreBenchReport{Tool: "kplexbench -ext store", Reps: reps, SortBufArcs: sortBufArcs}
	var sumRatio, sumSpup float64
	for _, bg := range storeBenchGraphs(c.Quick) {
		g := bg.Build()
		txt := filepath.Join(dir, bg.Name+".txt")
		kpg := filepath.Join(dir, bg.Name+".kpg")
		if err := graph.WriteEdgeListFile(txt, g); err != nil {
			return err
		}
		ti, err := os.Stat(txt)
		if err != nil {
			return err
		}

		cell := StoreBenchCell{Graph: bg.Name, N: g.N(), M: int64(g.M()), TextBytes: ti.Size()}

		// Conversion: external sort off the text file, peak heap sampled.
		convert := time.Duration(1 << 62)
		for r := 0; r < reps; r++ {
			// Settle the heap so the sampled peak is the converter's, not
			// leftover garbage from building g or a previous rep.
			runtime.GC()
			var info *store.ConvertInfo
			t0 := time.Now()
			peak, err := peakHeapDuring(func() error {
				f, err := os.Open(txt)
				if err != nil {
					return err
				}
				defer f.Close()
				info, err = store.ConvertEdgeList(f, kpg, store.ConvertOptions{SortBufArcs: sortBufArcs, TmpDir: dir})
				return err
			})
			if err != nil {
				return fmt.Errorf("%s: convert: %w", bg.Name, err)
			}
			convert = min(convert, time.Since(t0))
			cell.Runs = info.Runs
			cell.StoreBytes = info.FileBytes
			if mib := float64(peak) / (1 << 20); mib > cell.PeakHeapMiB {
				cell.PeakHeapMiB = mib
			}
			if info.Digest != graph.DigestHexOf(g) {
				return fmt.Errorf("%s: converted digest %s != source digest", bg.Name, info.Digest)
			}
		}
		cell.ConvertMS = float64(convert) / float64(time.Millisecond)
		cell.BytesPerEdge = float64(cell.StoreBytes) / float64(cell.M)
		cell.Ratio = float64(cell.TextBytes) / float64(cell.StoreBytes)

		// Cold open + one full block-decode scan.
		opened, scan := time.Duration(1<<62), time.Duration(1<<62)
		var prologueCold time.Duration = 1 << 62
		var frame []byte
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			rd, err := store.OpenFile(kpg)
			if err != nil {
				return err
			}
			opened = min(opened, time.Since(t0))
			t1 := time.Now()
			sum := 0
			for v := 0; v < rd.N(); v++ {
				sum += len(rd.Neighbors(v))
			}
			scan = min(scan, time.Since(t1))
			if sum != 2*g.M() {
				rd.Close()
				return fmt.Errorf("%s: scan saw %d arcs, want %d", bg.Name, sum, 2*g.M())
			}

			opts := kplex.NewOptions(2, 6)
			t2 := time.Now()
			p, err := kplex.Prepare(rd, opts)
			if err != nil {
				rd.Close()
				return err
			}
			prologueCold = min(prologueCold, time.Since(t2))
			frame = kplex.MarshalPrepared(p, rd.StoredDigest())
			rd.Close()
		}
		cell.ColdOpenUS = float64(opened) / float64(time.Microsecond)
		cell.FullScanMS = float64(scan) / float64(time.Millisecond)
		cell.PrologueColdMS = float64(prologueCold) / float64(time.Millisecond)

		// Warm path: deserialize the persisted frame, as a catalog-backed
		// kplexd does on its first query after restart.
		warm := time.Duration(1 << 62)
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			if _, _, err := kplex.UnmarshalPrepared(frame); err != nil {
				return err
			}
			warm = min(warm, time.Since(t0))
		}
		cell.PrologueWarmMS = float64(warm) / float64(time.Millisecond)
		if warm > 0 {
			cell.WarmSpeedup = float64(prologueCold) / float64(warm)
		}

		sumRatio += cell.Ratio
		sumSpup += cell.WarmSpeedup
		if cell.PeakHeapMiB > report.MaxHeapMiB {
			report.MaxHeapMiB = cell.PeakHeapMiB
		}
		report.Cells = append(report.Cells, cell)
		c.printf("%-12s %8d %9d %6d %9.1f %7.1f %7.2f %9.2fx %10.1f %9.2f %9.3f %7.1fx\n",
			bg.Name, cell.N, cell.M, cell.Runs, cell.ConvertMS, cell.PeakHeapMiB,
			cell.BytesPerEdge, cell.Ratio, cell.ColdOpenUS, cell.PrologueColdMS,
			cell.PrologueWarmMS, cell.WarmSpeedup)
	}
	if n := len(report.Cells); n > 0 {
		report.MeanRatio = sumRatio / float64(n)
		report.MeanWarmSpup = sumSpup / float64(n)
	}
	c.printf("mean compression %.2fx vs edge-list text; peak convert heap %.1f MiB; mean warm-prologue speedup %.1fx\n",
		report.MeanRatio, report.MaxHeapMiB, report.MeanWarmSpup)

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(data, '\n'), 0o644)
}
