package bench

import (
	"strings"
	"testing"
)

func TestExtendedUBAlgosShape(t *testing.T) {
	algos := ExtendedUBAlgos()
	if len(algos) != len(AblationUBAlgos())+1 {
		t.Fatalf("expected one extra column, got %d algos", len(algos))
	}
	if algos[len(algos)-1].Name != "Ours" {
		t.Errorf("last column should be Ours, got %s", algos[len(algos)-1].Name)
	}
	found := false
	for _, a := range algos {
		if a.Name == "Ours\\ub+color" {
			found = true
			o := a.Opts(2, 8)
			if o.UpperBound.String() != "color" {
				t.Errorf("color variant uses bound %v", o.UpperBound)
			}
		}
	}
	if !found {
		t.Error("coloring column missing")
	}
}

// The extension runners must produce well-formed tables on a quick config;
// count-mismatch errors inside them would surface here.
func TestExtensionRunnersQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("extension runners take a few seconds")
	}
	var sb strings.Builder
	cfg := &Config{Quick: true, Out: &sb}
	if err := cfg.TableMaximum(); err != nil {
		t.Fatalf("TableMaximum: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "Table M") || strings.Count(out, "\n") < 3 {
		t.Errorf("TableMaximum output malformed:\n%s", out)
	}
	// Every row must have binsrch == bnb by construction (the runner
	// errors out otherwise), so reaching here is the assertion.
}
