package bench

import (
	"fmt"
	"time"

	"repro/internal/kplex"
)

// figure7Cases picks the datasets of the paper's Figure 7 / Figure 14 q
// sweep: wiki-vote and soc-pokec analogues for two values of k each.
func (c *Config) figure7Cases() []struct {
	ds Dataset
	k  int
	qs []int
} {
	wiki, _ := ByName("wiki-vote-syn")
	pokec, _ := ByName("pokec-syn")
	cases := []struct {
		ds Dataset
		k  int
		qs []int
	}{
		{wiki, 3, []int{24, 26, 28, 30, 32}},
		{wiki, 4, []int{30, 32, 34, 36}},
		{pokec, 3, []int{6, 8, 10, 12}},
		{pokec, 4, []int{10, 12, 14}},
	}
	if c.Quick {
		cases = cases[:1]
		cases[0].qs = cases[0].qs[:3]
	}
	return cases
}

// Figure7 prints the time-vs-q series for FP, ListPlex and Ours (paper
// Figures 7 and 14). Each block is one subplot; each line is one q value
// with the three algorithm times, ready for plotting.
func (c *Config) Figure7() error {
	algos := SequentialAlgos()
	three := []Algo{algos[0], algos[1], algos[3]} // FP, ListPlex, Ours
	c.printf("Figure 7 — Running time vs q (sec)\n")
	for _, cs := range c.figure7Cases() {
		g := cs.ds.Build()
		c.printf("# %s (k=%d)\n", cs.ds.Name, cs.k)
		c.printf("%4s %10s %10s %10s %12s\n", "q", "FP", "ListPlex", "Ours", "#k-plexes")
		for _, q := range cs.qs {
			var times []time.Duration
			var count int64 = -1
			for _, a := range three {
				m, err := Run(g, a.Opts(cs.k, q))
				if err != nil {
					return fmt.Errorf("figure7 %s k=%d q=%d %s: %w", cs.ds.Name, cs.k, q, a.Name, err)
				}
				if count == -1 {
					count = m.Count
				} else if m.Count != count {
					return fmt.Errorf("figure7 %s k=%d q=%d: count mismatch", cs.ds.Name, cs.k, q)
				}
				times = append(times, m.Elapsed)
			}
			c.printf("%4d %10s %10s %10s %12d\n", q,
				FormatDuration(times[0]), FormatDuration(times[1]), FormatDuration(times[2]), count)
		}
	}
	return nil
}

// Figure8 prints the parallel speedup series (paper Figure 8): Ours with
// 1, 2, 4, 8 and min(16, GOMAXPROCS) threads on the large datasets, with
// one time column per scheduler (the scheduler-ablation extension) and the
// speedup of the best scheduler at each thread count over the one-thread
// run.
func (c *Config) Figure8() error {
	maxT := c.threads()
	threadSteps := []int{1, 2, 4, 8, 16}
	var steps []int
	for _, t := range threadSteps {
		if t <= maxT {
			steps = append(steps, t)
		}
	}
	if len(steps) == 0 {
		steps = []int{1}
	}
	variants := SchedulerVariants()
	ds := ByClass(Large)
	if c.Quick {
		ds = ds[:1]
	}
	c.printf("Figure 8 — Speedup of parallel Ours per scheduler\n")
	for _, d := range ds {
		g := d.Build()
		params := d.Params
		if c.Quick {
			params = params[:1]
		}
		for _, kq := range params {
			c.printf("# %s (k=%d, q=%d)\n", d.Name, kq.K, kq.Q)
			c.printf("%8s", "threads")
			for _, v := range variants {
				c.printf(" %10s", v.Name)
			}
			c.printf(" %8s\n", "speedup")
			var base time.Duration
			var count int64 = -1
			for _, th := range steps {
				best := time.Duration(1<<63 - 1)
				times := make([]time.Duration, len(variants))
				for i, v := range variants {
					if th == 1 && i > 0 {
						// One thread with no splitting runs the sequential
						// path whatever the scheduler; reuse the measurement.
						times[i] = times[0]
						continue
					}
					opts := kplex.NewOptions(kq.K, kq.Q)
					opts.Threads = th
					opts.Scheduler = v.Style
					if th > 1 {
						opts.TaskTimeout = 100 * time.Microsecond
					}
					m, err := Run(g, opts)
					if err != nil {
						return fmt.Errorf("figure8 %s t=%d %s: %w", d.Name, th, v.Name, err)
					}
					if count == -1 {
						count = m.Count
					} else if m.Count != count {
						return fmt.Errorf("figure8 %s t=%d %s: count %d, want %d",
							d.Name, th, v.Name, m.Count, count)
					}
					times[i] = m.Elapsed
					if m.Elapsed < best {
						best = m.Elapsed
					}
				}
				if th == 1 {
					base = times[0] // one-thread stage run, the paper's baseline
				}
				c.printf("%8d", th)
				for _, t := range times {
					c.printf(" %10s", FormatDuration(t))
				}
				c.printf(" %8.2f\n", float64(base)/float64(best))
			}
		}
	}
	return nil
}

// Figure9 prints the Basic-vs-Ours q sweep (paper Figures 9 and 15).
func (c *Config) Figure9() error {
	cases := c.figure7Cases()
	c.printf("Figure 9 — Basic vs Ours, time vs q (sec)\n")
	for _, cs := range cases {
		g := cs.ds.Build()
		c.printf("# %s (k=%d)\n", cs.ds.Name, cs.k)
		c.printf("%4s %10s %10s\n", "q", "Basic", "Ours")
		for _, q := range cs.qs {
			mb, err := Run(g, kplex.BasicOptions(cs.k, q))
			if err != nil {
				return err
			}
			mo, err := Run(g, kplex.NewOptions(cs.k, q))
			if err != nil {
				return err
			}
			if mb.Count != mo.Count {
				return fmt.Errorf("figure9 %s k=%d q=%d: count mismatch %d vs %d",
					cs.ds.Name, cs.k, q, mb.Count, mo.Count)
			}
			c.printf("%4d %10s %10s\n", q, FormatDuration(mb.Elapsed), FormatDuration(mo.Elapsed))
		}
	}
	return nil
}

// Figure13 prints the τ_time sensitivity study (paper Appendix B.1,
// Figure 13): parallel Ours across a τ grid on the large datasets.
func (c *Config) Figure13() error {
	threads := c.threads()
	taus := []time.Duration{
		time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond,
		time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
	}
	ds := ByClass(Large)
	if c.Quick {
		ds = ds[:1]
		taus = taus[1:4]
	}
	c.printf("Figure 13 — Effect of τ_time (sec, %d threads)\n", threads)
	for _, d := range ds {
		g := d.Build()
		kq := d.Params[0]
		c.printf("# %s (k=%d, q=%d)\n", d.Name, kq.K, kq.Q)
		c.printf("%12s %10s %10s\n", "τ_time", "time(s)", "splits")
		for _, tau := range taus {
			opts := kplex.NewOptions(kq.K, kq.Q)
			opts.Threads = threads
			opts.TaskTimeout = tau
			m, err := Run(g, opts)
			if err != nil {
				return fmt.Errorf("figure13 %s τ=%v: %w", d.Name, tau, err)
			}
			c.printf("%12v %10s %10d\n", tau, FormatDuration(m.Elapsed), m.Stats.Splits)
		}
	}
	return nil
}
