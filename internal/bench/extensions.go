package bench

// Extension experiments beyond the paper's own tables: the coloring upper
// bound from the Maplex line of related work slotted into the Table 5
// ablation grid, and a maximum-k-plex comparison between the binary-search
// reduction and the incumbent branch-and-bound. Both are documented in
// DESIGN.md as extensions, not reproductions.

import (
	"context"
	"fmt"
	"time"

	"repro/internal/kplex"
)

// ExtendedUBAlgos returns the Table 5 grid extended with the coloring
// bound variant.
func ExtendedUBAlgos() []Algo {
	algos := AblationUBAlgos()
	colored := Algo{"Ours\\ub+color", func(k, q int) kplex.Options {
		o := kplex.NewOptions(k, q)
		o.UpperBound = kplex.UBColor
		return o
	}}
	// Keep "Ours" as the last column, as in the paper's tables.
	out := make([]Algo, 0, len(algos)+1)
	out = append(out, algos[:len(algos)-1]...)
	out = append(out, colored, algos[len(algos)-1])
	return out
}

// TableUBColor prints the upper-bound ablation including the coloring
// bound (extension of paper Table 5).
func (c *Config) TableUBColor() error {
	return c.ablationTable("Table 5x — Upper bounding incl. coloring bound (sec, extension)", ExtendedUBAlgos())
}

// TableMaximum compares the two maximum-k-plex solvers and the greedy
// heuristic on the ablation datasets (extension; the problem setting of the
// BS/kPlexS related work).
func (c *Config) TableMaximum() error {
	c.printf("Table M — Maximum k-plex: greedy vs binary search vs BnB (extension)\n")
	c.printf("%-14s %2s %8s %8s %8s %12s %12s\n",
		"Network", "k", "greedy", "binsrch", "bnb", "t_bin(s)", "t_bnb(s)")
	ctx := context.Background()
	for _, d := range c.ablationCases() {
		g := d.Build()
		for _, k := range []int{2, 3} {
			greedy := kplex.GreedyKPlex(g, k)

			t0 := time.Now()
			bin, err := kplex.FindMaximumKPlex(ctx, g, k)
			if err != nil {
				return fmt.Errorf("tableM %s k=%d binary: %w", d.Name, k, err)
			}
			tBin := time.Since(t0)

			t0 = time.Now()
			bnb, err := kplex.FindMaximumKPlexBnB(ctx, g, k)
			if err != nil {
				return fmt.Errorf("tableM %s k=%d bnb: %w", d.Name, k, err)
			}
			tBnB := time.Since(t0)

			if len(bin) != len(bnb) {
				return fmt.Errorf("tableM %s k=%d: solvers disagree (%d vs %d)",
					d.Name, k, len(bin), len(bnb))
			}
			c.printf("%-14s %2d %8d %8d %8d %12s %12s\n",
				d.Name, k, len(greedy), len(bin), len(bnb),
				FormatDuration(tBin), FormatDuration(tBnB))
		}
	}
	return nil
}
