package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBatchBenchQuick smoke-tests the batched-sweep benchmark: the quick
// configuration must produce a well-formed snapshot whose per-cell counts
// passed the bench's internal batch-vs-sequential equality check, with a
// positive speedup on every sweep.
func TestBatchBenchQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark loops take seconds")
	}
	var sb strings.Builder
	path := filepath.Join(t.TempDir(), "BENCH_batch.json")
	cfg := &Config{Quick: true, Out: &sb}
	if err := cfg.BatchBench(path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mean sweep speedup") {
		t.Errorf("missing summary line:\n%s", sb.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep BatchBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("corrupt snapshot: %v", err)
	}
	if len(rep.Sweeps) == 0 || rep.Cells != 4 {
		t.Fatalf("snapshot shape: %+v", rep)
	}
	for _, sw := range rep.Sweeps {
		if len(sw.Qs) != 4 || len(sw.Counts) != 4 {
			t.Errorf("%s: sweep shape %+v", sw.Graph, sw)
		}
		if sw.Speedup <= 0 {
			t.Errorf("%s: speedup %f", sw.Graph, sw.Speedup)
		}
	}
	if rep.MeanSpeedup <= 0 || rep.MinSpeedup <= 0 {
		t.Errorf("summary speedups: %+v", rep)
	}
}
