package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/jobs"
	"repro/internal/kplex"
)

// The jobs benchmark: enumeration throughput with and without seed-level
// checkpointing, recorded as a machine-readable snapshot (BENCH_jobs.json)
// so the perf trajectory of the durable job subsystem is tracked across
// PRs. The baseline computes the identical aggregates (count, top-k,
// histogram, plex digest) through a plain in-memory callback; the
// checkpointed run goes through the job manager with its per-seed
// buffering, WAL appends and fsyncs. The delta between them is therefore
// exactly the durability cost.

// JobsBenchCell is one (dataset, k, q) measurement.
type JobsBenchCell struct {
	Graph       string  `json:"graph"`
	K           int     `json:"k"`
	Q           int     `json:"q"`
	Threads     int     `json:"threads"`
	Count       int64   `json:"count"`
	Seeds       int     `json:"seeds"`
	Checkpoints int64   `json:"checkpoints"`
	BaselineMS  float64 `json:"baselineMs"` // aggregates, no durability
	JobMS       float64 `json:"jobMs"`      // job manager with WAL checkpoints
	OverheadPct float64 `json:"overheadPct"`
	BaselinePPS float64 `json:"baselinePlexesPerSec"`
	JobPPS      float64 `json:"jobPlexesPerSec"`
}

// JobsBenchReport is the BENCH_jobs.json document.
type JobsBenchReport struct {
	Tool            string          `json:"tool"`
	Threads         int             `json:"threads"`
	Reps            int             `json:"reps"`
	CheckpointSeeds int             `json:"checkpointSeeds"`
	Cells           []JobsBenchCell `json:"cells"`
	MeanOverheadPct float64         `json:"meanOverheadPct"`
	MaxOverheadPct  float64         `json:"maxOverheadPct"`
}

// jobsBenchCases picks the measured datasets. Checkpointing has a fixed
// durability cost (a handful of fsyncs per job), so meaningful overhead
// numbers need runs long enough to amortise it — the sub-second-and-up
// cells, not the millisecond toys.
func (c *Config) jobsBenchCases() []struct {
	ds Dataset
	kq KQ
} {
	names := map[string]bool{"wiki-vote-syn": true}
	if !c.Quick {
		names["epinions-syn"] = true
		names["slashdot-syn"] = true
		names["skitter-syn"] = true
	}
	var out []struct {
		ds Dataset
		kq KQ
	}
	for _, ds := range Suite() {
		if names[ds.Name] {
			out = append(out, struct {
				ds Dataset
				kq KQ
			}{ds, ds.Params[0]})
		}
	}
	return out
}

// JobsBench measures checkpointing overhead and writes the JSON snapshot
// to jsonPath (plus a human-readable table to Config.Out).
func (c *Config) JobsBench(jsonPath string) error {
	const reps = 5
	const checkpointSeeds = 64
	threads := c.threads()

	report := JobsBenchReport{
		Tool:            "kplexbench -json",
		Threads:         threads,
		Reps:            reps,
		CheckpointSeeds: checkpointSeeds,
	}

	c.printf("Jobs benchmark: enumeration throughput with/without seed checkpointing (threads=%d, best of %d)\n", threads, reps)
	c.printf("%-16s %6s %3s %3s %12s %12s %12s %9s\n", "dataset", "count", "k", "q", "baseline(ms)", "job(ms)", "ckpts", "overhead")

	for _, cs := range c.jobsBenchCases() {
		g := cs.ds.Build()
		k, q := cs.kq.K, cs.kq.Q

		cell := JobsBenchCell{Graph: cs.ds.Name, K: k, Q: q, Threads: threads}

		baseOpts := kplex.NewOptions(k, q)
		baseOpts.Threads = threads
		if threads > 1 {
			baseOpts.TaskTimeout = 2 * time.Millisecond
		}
		seeds, err := kplex.SeedSpace(g, baseOpts)
		if err != nil {
			return err
		}
		cell.Seeds = seeds

		// Baseline: identical aggregates, no durability.
		baselineRep := func() error {
			agg := jobs.NewAggregate(10)
			var mu sync.Mutex
			opts := baseOpts
			opts.OnPlex = func(p []int) {
				mu.Lock()
				agg.AddPlex(p)
				mu.Unlock()
			}
			res, err := kplex.Run(context.Background(), g, opts)
			if err != nil {
				return fmt.Errorf("baseline %s: %w", cs.ds.Name, err)
			}
			ms := float64(res.Elapsed) / float64(time.Millisecond)
			if cell.BaselineMS == 0 || ms < cell.BaselineMS {
				cell.BaselineMS = ms
			}
			cell.Count = res.Count
			return nil
		}

		// Checkpointed: through the job manager, WAL and fsyncs included.
		dir, err := os.MkdirTemp("", "kplexbench-jobs-")
		if err != nil {
			return err
		}
		graphName := cs.ds.Name
		m, err := jobs.Open(jobs.Config{
			Dir:             dir,
			Workers:         1,
			CheckpointSeeds: checkpointSeeds,
			DefaultThreads:  threads,
			Load: func(string) (graph.CSR, string, func(), error) {
				return g, graphName, func() {}, nil
			},
		})
		if err != nil {
			os.RemoveAll(dir)
			return err
		}
		jobRep := func() error {
			man, err := m.Submit(jobs.Spec{Graph: graphName, K: k, Q: q, Threads: threads})
			if err != nil {
				return err
			}
			v, err := m.Wait(context.Background(), man.ID)
			if err != nil {
				return fmt.Errorf("waiting for job %s on %s: %w", man.ID, cs.ds.Name, err)
			}
			if v.State != jobs.StateDone {
				return fmt.Errorf("job %s on %s ended %s (%s)", man.ID, cs.ds.Name, v.State, v.Error)
			}
			res, err := m.Result(man.ID)
			if err != nil {
				return err
			}
			if res.Count != cell.Count {
				return fmt.Errorf("%s: job counted %d, baseline %d", cs.ds.Name, res.Count, cell.Count)
			}
			if cell.JobMS == 0 || res.ElapsedMS < cell.JobMS {
				cell.JobMS = res.ElapsedMS
			}
			return nil
		}

		// Interleave the reps so slow system phases (CI neighbours, thermal
		// drift) hit both variants equally instead of biasing one side.
		for rep := 0; rep < reps; rep++ {
			if err := baselineRep(); err != nil {
				m.Close()
				os.RemoveAll(dir)
				return err
			}
			if err := jobRep(); err != nil {
				m.Close()
				os.RemoveAll(dir)
				return err
			}
		}
		cell.Checkpoints = m.Counters().Checkpoints.Load() / reps
		m.Close()
		os.RemoveAll(dir)

		if cell.BaselineMS > 0 {
			cell.OverheadPct = (cell.JobMS - cell.BaselineMS) / cell.BaselineMS * 100
			cell.BaselinePPS = float64(cell.Count) / cell.BaselineMS * 1000
			cell.JobPPS = float64(cell.Count) / cell.JobMS * 1000
		}
		report.Cells = append(report.Cells, cell)
		c.printf("%-16s %6d %3d %3d %12.2f %12.2f %12d %8.2f%%\n",
			cs.ds.Name, cell.Count, k, q, cell.BaselineMS, cell.JobMS, cell.Checkpoints, cell.OverheadPct)
	}

	var sum float64
	for _, cell := range report.Cells {
		sum += cell.OverheadPct
		if cell.OverheadPct > report.MaxOverheadPct {
			report.MaxOverheadPct = cell.OverheadPct
		}
	}
	if len(report.Cells) > 0 {
		report.MeanOverheadPct = sum / float64(len(report.Cells))
	}
	c.printf("mean overhead %.2f%%, max %.2f%%\n", report.MeanOverheadPct, report.MaxOverheadPct)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	c.printf("wrote %s\n", jsonPath)
	return nil
}
