package bench

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/kplex"
)

// Table2 prints the dataset statistics table (paper Table 2): n, m, Δ, D
// for every synthetic dataset next to the real graph it stands in for.
func (c *Config) Table2() error {
	c.printf("Table 2 — Datasets (synthetic stand-ins)\n")
	c.printf("%-14s %-12s %9s %10s %7s %5s\n", "Network", "analog of", "n", "m", "Δ", "D")
	for _, d := range Suite() {
		if d.Class == Stress || (c.Quick && d.Class == Large) {
			continue
		}
		s := graph.ComputeStats(d.Build())
		c.printf("%-14s %-12s %9d %10d %7d %5d\n", d.Name, d.Analog, s.N, s.M, s.MaxDegree, s.Degeneracy)
	}
	return nil
}

// table3Cases returns the dataset/parameter grid for the sequential
// comparison. Quick mode keeps three representative datasets.
func (c *Config) table3Cases() []Dataset {
	var out []Dataset
	for _, d := range Suite() {
		if d.Class != Small && d.Class != Medium {
			continue
		}
		if c.Quick && d.Name != "jazz-syn" && d.Name != "epinions-syn" && d.Name != "dblp-syn" {
			continue
		}
		out = append(out, d)
	}
	return out
}

// Table3 prints the sequential running-time comparison (paper Table 3):
// #k-plexes plus the times of FP, ListPlex, Ours_P and Ours on the small
// and medium datasets. All algorithms must report identical counts; a
// mismatch is returned as an error since it would invalidate the row.
func (c *Config) Table3() error {
	algos := SequentialAlgos()
	c.printf("Table 3 — Sequential running time (sec)\n")
	c.printf("%-14s %2s %3s %12s", "Network", "k", "q", "#k-plexes")
	for _, a := range algos {
		c.printf(" %10s", a.Name)
	}
	c.printf("\n")
	for _, d := range c.table3Cases() {
		g := d.Build()
		params := d.Params
		if c.Quick && len(params) > 2 {
			params = params[:2]
		}
		for _, kq := range params {
			counts := make([]int64, len(algos))
			times := make([]time.Duration, len(algos))
			for i, a := range algos {
				m, err := Run(g, a.Opts(kq.K, kq.Q))
				if err != nil {
					return fmt.Errorf("table3 %s k=%d q=%d %s: %w", d.Name, kq.K, kq.Q, a.Name, err)
				}
				counts[i], times[i] = m.Count, m.Elapsed
			}
			for i := 1; i < len(counts); i++ {
				if counts[i] != counts[0] {
					return fmt.Errorf("table3 %s k=%d q=%d: count mismatch %s=%d vs %s=%d",
						d.Name, kq.K, kq.Q, algos[0].Name, counts[0], algos[i].Name, counts[i])
				}
			}
			c.printf("%-14s %2d %3d %12d", d.Name, kq.K, kq.Q, counts[0])
			for _, t := range times {
				c.printf(" %10s", FormatDuration(t))
			}
			c.printf("\n")
		}
	}
	return nil
}

// Table4 prints the parallel comparison on the large datasets (paper
// Table 4): FP, ListPlex and Ours with the default τ_time = 0.1 ms, plus
// Ours with the best τ from a small grid.
func (c *Config) Table4() error {
	threads := c.threads()
	taus := []time.Duration{
		10 * time.Microsecond, 100 * time.Microsecond, 1 * time.Millisecond, 10 * time.Millisecond,
	}
	c.printf("Table 4 — Parallel running time (sec, %d threads)\n", threads)
	c.printf("%-14s %2s %3s %12s %10s %10s %10s %14s\n",
		"Network", "k", "q", "#k-plexes", "FP", "ListPlex", "Ours", "Ours(τ_best)")
	ds := ByClass(Large)
	if c.Quick {
		ds = ds[:2]
	}
	for _, d := range ds {
		g := d.Build()
		params := d.Params
		if c.Quick {
			params = params[:1]
		}
		limit := 180 * time.Second
		if c.Quick {
			limit = 30 * time.Second
		}
		for _, kq := range params {
			row := make(map[string]Measurement)
			for _, a := range SequentialAlgos() {
				if a.Name == "Ours_P" {
					continue
				}
				opts := a.Opts(kq.K, kq.Q)
				opts.Threads = threads
				if a.Name == "Ours" {
					opts.TaskTimeout = 100 * time.Microsecond
				} else {
					// The baselines' parallel modes have no straggler
					// splitting, matching their published implementations.
					opts.TaskTimeout = 0
				}
				m, err := RunWithTimeout(g, opts, limit)
				if err != nil {
					return fmt.Errorf("table4 %s %s: %w", d.Name, a.Name, err)
				}
				row[a.Name] = m
			}
			ours := row["Ours"]
			if ours.TimedOut {
				return fmt.Errorf("table4 %s k=%d q=%d: Ours exceeded the %v cap; dataset needs recalibration",
					d.Name, kq.K, kq.Q, limit)
			}
			for name, m := range row {
				if !m.TimedOut && m.Count != ours.Count {
					return fmt.Errorf("table4 %s k=%d q=%d: count mismatch %s=%d vs Ours=%d",
						d.Name, kq.K, kq.Q, name, m.Count, ours.Count)
				}
			}
			// τ_best sweep.
			best := Measurement{Elapsed: 1<<63 - 1}
			tausToTry := taus
			if c.Quick {
				tausToTry = taus[:2]
			}
			for _, tau := range tausToTry {
				opts := kplex.NewOptions(kq.K, kq.Q)
				opts.Threads = threads
				opts.TaskTimeout = tau
				m, err := Run(g, opts)
				if err != nil {
					return fmt.Errorf("table4 τ sweep %s: %w", d.Name, err)
				}
				if m.Elapsed < best.Elapsed {
					best = m
				}
			}
			cell := func(m Measurement) string {
				if m.TimedOut {
					return "T/O"
				}
				return FormatDuration(m.Elapsed)
			}
			c.printf("%-14s %2d %3d %12d %10s %10s %10s %14s\n",
				d.Name, kq.K, kq.Q, ours.Count,
				cell(row["FP"]), cell(row["ListPlex"]), cell(ours),
				FormatDuration(best.Elapsed))
		}
	}
	return nil
}

// TableScheduler prints the scheduler ablation (extension of the paper's
// Section 6 discussion): parallel Ours under each work-distribution scheme
// on the straggler-heavy planted datasets, with the split/steal counters
// that explain the differences. All schedulers must report identical
// counts; a mismatch invalidates the row and is returned as an error.
func (c *Config) TableScheduler() error {
	threads := c.threads()
	variants := SchedulerVariants()
	c.printf("Table S — Scheduler ablation (sec, %d threads, τ=0.1ms)\n", threads)
	c.printf("%-14s %2s %3s %12s", "Network", "k", "q", "#k-plexes")
	for _, v := range variants {
		c.printf(" %10s", v.Name)
	}
	c.printf(" %8s %8s\n", "splits", "steals")
	names := []string{"straggler-syn", "arabic-syn", "dblp-syn"}
	if c.Quick {
		names = names[:1]
	}
	for _, name := range names {
		d, ok := ByName(name)
		if !ok {
			return fmt.Errorf("tableScheduler: dataset %s missing", name)
		}
		g := d.Build()
		params := d.Params
		if c.Quick {
			params = params[:1]
		}
		for _, kq := range params {
			times := make([]time.Duration, len(variants))
			var count int64
			var stealRun Measurement
			for i, v := range variants {
				opts := kplex.NewOptions(kq.K, kq.Q)
				opts.Threads = threads
				opts.TaskTimeout = 100 * time.Microsecond
				opts.Scheduler = v.Style
				m, err := Run(g, opts)
				if err != nil {
					return fmt.Errorf("tableScheduler %s %s: %w", d.Name, v.Name, err)
				}
				if i == 0 {
					count = m.Count
				} else if m.Count != count {
					return fmt.Errorf("tableScheduler %s k=%d q=%d: count mismatch %s=%d vs %s=%d",
						d.Name, kq.K, kq.Q, v.Name, m.Count, variants[0].Name, count)
				}
				times[i] = m.Elapsed
				if v.Style == kplex.SchedulerSteal {
					stealRun = m
				}
			}
			c.printf("%-14s %2d %3d %12d", d.Name, kq.K, kq.Q, count)
			for _, t := range times {
				c.printf(" %10s", FormatDuration(t))
			}
			c.printf(" %8d %8d\n", stealRun.Stats.Splits, stealRun.Stats.Steals)
		}
	}
	return nil
}

// ablationCases picks the four representative datasets the paper uses for
// Tables 5 and 6.
func (c *Config) ablationCases() []Dataset {
	names := []string{"wiki-vote-syn", "epinions-syn", "email-syn", "pokec-syn"}
	if c.Quick {
		names = names[:2]
	}
	var out []Dataset
	for _, n := range names {
		d, ok := ByName(n)
		if ok {
			out = append(out, d)
		}
	}
	return out
}

// ablationTable runs one ablation algorithm family over the ablation grid.
func (c *Config) ablationTable(title string, algos []Algo) error {
	c.printf("%s\n", title)
	c.printf("%-14s %2s %3s %12s", "Network", "k", "q", "#k-plexes")
	for _, a := range algos {
		c.printf(" %12s", a.Name)
	}
	c.printf("\n")
	for _, d := range c.ablationCases() {
		g := d.Build()
		params := d.Params
		if c.Quick && len(params) > 2 {
			params = params[:2]
		}
		for _, kq := range params {
			var count int64
			times := make([]time.Duration, len(algos))
			for i, a := range algos {
				m, err := Run(g, a.Opts(kq.K, kq.Q))
				if err != nil {
					return fmt.Errorf("%s %s %s: %w", title, d.Name, a.Name, err)
				}
				if i == 0 {
					count = m.Count
				} else if m.Count != count {
					return fmt.Errorf("%s %s k=%d q=%d: count mismatch (%s: %d vs %d)",
						title, d.Name, kq.K, kq.Q, a.Name, m.Count, count)
				}
				times[i] = m.Elapsed
			}
			c.printf("%-14s %2d %3d %12d", d.Name, kq.K, kq.Q, count)
			for _, t := range times {
				c.printf(" %12s", FormatDuration(t))
			}
			c.printf("\n")
		}
	}
	return nil
}

// Table5 prints the upper-bounding ablation (paper Table 5).
func (c *Config) Table5() error {
	return c.ablationTable("Table 5 — Effect of upper bounding (sec)", AblationUBAlgos())
}

// Table6 prints the pruning-rule ablation (paper Table 6).
func (c *Config) Table6() error {
	return c.ablationTable("Table 6 — Effect of pruning rules (sec)", AblationRuleAlgos())
}

// Table7 prints the peak-memory comparison (paper Appendix B.2, Table 7).
func (c *Config) Table7() error {
	algos := []Algo{
		{"FP", SequentialAlgos()[0].Opts},
		{"ListPlex", SequentialAlgos()[1].Opts},
		{"Ours", kplex.NewOptions},
	}
	c.printf("Table 7 — Peak extra heap during enumeration (MiB)\n")
	c.printf("%-14s %2s %3s", "Network", "k", "q")
	for _, a := range algos {
		c.printf(" %10s", a.Name)
	}
	c.printf("\n")
	for _, d := range c.ablationCases() {
		g := d.Build()
		kq := d.Params[len(d.Params)-1]
		c.printf("%-14s %2d %3d", d.Name, kq.K, kq.Q)
		for _, a := range algos {
			m, err := RunMeasured(g, a.Opts(kq.K, kq.Q))
			if err != nil {
				return err
			}
			c.printf(" %10.2f", float64(m.PeakHeap)/(1<<20))
		}
		c.printf("\n")
	}
	return nil
}
