package bench

import (
	"fmt"
	"time"

	"repro/internal/kplex"
)

// figure14Cases lists the appendix q-sweep subplots that Figure 7 does not
// already cover: the soc-epinions and email-euall analogues (paper Figure
// 14 shows eight subplots across four datasets; Figures 7 and 14 share the
// wiki-vote and soc-pokec panels, which figure7Cases provides).
func (c *Config) figure14Cases() []struct {
	ds Dataset
	k  int
	qs []int
} {
	epin, _ := ByName("epinions-syn")
	email, _ := ByName("email-syn")
	cases := []struct {
		ds Dataset
		k  int
		qs []int
	}{
		{epin, 2, []int{14, 16, 18, 20}},
		{epin, 3, []int{26, 28, 30, 32}},
		{email, 3, []int{10, 12, 14}},
		{email, 4, []int{14, 16, 18}},
	}
	if c.Quick {
		cases = cases[:1]
		cases[0].qs = cases[0].qs[:3]
	}
	return cases
}

// Figure14 prints the appendix time-vs-q series (paper Appendix B.3,
// Figure 14) for the datasets not shown in Figure 7.
func (c *Config) Figure14() error {
	algos := SequentialAlgos()
	three := []Algo{algos[0], algos[1], algos[3]} // FP, ListPlex, Ours
	c.printf("Figure 14 — Running time vs q, appendix datasets (sec)\n")
	for _, cs := range c.figure14Cases() {
		g := cs.ds.Build()
		c.printf("# %s (k=%d)\n", cs.ds.Name, cs.k)
		c.printf("%4s %10s %10s %10s %12s\n", "q", "FP", "ListPlex", "Ours", "#k-plexes")
		for _, q := range cs.qs {
			var times []time.Duration
			var count int64 = -1
			for _, a := range three {
				m, err := Run(g, a.Opts(cs.k, q))
				if err != nil {
					return fmt.Errorf("figure14 %s k=%d q=%d %s: %w", cs.ds.Name, cs.k, q, a.Name, err)
				}
				if count == -1 {
					count = m.Count
				} else if m.Count != count {
					return fmt.Errorf("figure14 %s k=%d q=%d: count mismatch", cs.ds.Name, cs.k, q)
				}
				times = append(times, m.Elapsed)
			}
			c.printf("%4d %10s %10s %10s %12d\n", q,
				FormatDuration(times[0]), FormatDuration(times[1]), FormatDuration(times[2]), count)
		}
	}
	return nil
}

// Figure15 prints the appendix Basic-vs-Ours q sweep (paper Appendix B.4,
// Figure 15) on the Figure 14 datasets.
func (c *Config) Figure15() error {
	c.printf("Figure 15 — Basic vs Ours, appendix datasets (sec)\n")
	for _, cs := range c.figure14Cases() {
		g := cs.ds.Build()
		c.printf("# %s (k=%d)\n", cs.ds.Name, cs.k)
		c.printf("%4s %10s %10s\n", "q", "Basic", "Ours")
		for _, q := range cs.qs {
			mb, err := Run(g, kplex.BasicOptions(cs.k, q))
			if err != nil {
				return err
			}
			mo, err := Run(g, kplex.NewOptions(cs.k, q))
			if err != nil {
				return err
			}
			if mb.Count != mo.Count {
				return fmt.Errorf("figure15 %s k=%d q=%d: count mismatch %d vs %d",
					cs.ds.Name, cs.k, q, mb.Count, mo.Count)
			}
			c.printf("%4d %10s %10s\n", q, FormatDuration(mb.Elapsed), FormatDuration(mo.Elapsed))
		}
	}
	return nil
}
