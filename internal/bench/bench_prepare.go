package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/gen"
	"repro/internal/kplex"
)

// The prepared-graph benchmark: how much of a query the O(n+m) run
// prologue (CTCP/core reduction + degeneracy relabelling) costs, and how
// much a repeat query saves by reusing a cached kplex.Prepared handle —
// exactly the path kplexd takes when its prepared cache hits. The snapshot
// (BENCH_prepare.json) also records the seed builder's steady-state
// allocations per build, which the zero-allocation pipeline pins at 0;
// CI's bench-smoke job publishes the file and the alloc guard test fails
// on regressions.

// PrepareBenchCell is one (corpus graph, k, q) measurement.
type PrepareBenchCell struct {
	Graph      string  `json:"graph"`
	K          int     `json:"k"`
	Q          int     `json:"q"`
	Seeds      int     `json:"seeds"` // seed groups of the decomposition
	Count      int64   `json:"count"`
	PrologueMS float64 `json:"prologueMs"` // Prepare alone
	ColdMS     float64 `json:"coldMs"`     // Prepare + RunPrepared (first query)
	WarmMS     float64 `json:"warmMs"`     // RunPrepared on a cached handle (repeat query)
	Speedup    float64 `json:"speedup"`    // ColdMS / WarmMS

	// SeedBuildAllocs is the steady-state heap allocations per seed-graph
	// build (kplex.SeedBuildAllocsPerOp); 0 at steady state by design.
	SeedBuildAllocs float64 `json:"seedBuildAllocsPerOp"`
}

// PrepareBenchReport is the BENCH_prepare.json document.
type PrepareBenchReport struct {
	Tool                string             `json:"tool"`
	Reps                int                `json:"reps"`
	Cells               []PrepareBenchCell `json:"cells"`
	MeanSpeedup         float64            `json:"meanSpeedup"`
	MinSpeedup          float64            `json:"minSpeedup"`
	MaxSeedBuildAllocs  float64            `json:"maxSeedBuildAllocsPerOp"`
	ZeroAllocSteadyDone bool               `json:"zeroAllocSteadyState"` // every cell at 0 allocs/op
}

// prepareBenchCombos mirrors the golden corpus cells (so the measured path
// is the one the regression suite pins for correctness) and adds one
// strict-threshold cell per graph. The strict cells are where the cached
// prologue pays most: an interactive user probing with rising q issues
// exactly these queries, whose enumeration prunes to almost nothing while
// the O(n+m) prologue would otherwise be paid in full every time.
func prepareBenchCombos(name string) [][2]int {
	switch name {
	case "gnp-dense":
		return [][2]int{{2, 6}, {3, 7}, {2, 10}}
	case "regular-flat":
		return [][2]int{{2, 4}, {3, 6}, {2, 8}}
	default:
		return [][2]int{{2, 6}, {3, 8}, {2, 12}}
	}
}

// PrepareBench measures prologue amortization over the corpus graphs and
// writes the machine-readable snapshot to jsonPath.
func (c *Config) PrepareBench(jsonPath string) error {
	reps := 7
	if c.Quick {
		reps = 5
	}
	corpus := gen.Corpus()
	if c.Quick {
		corpus = corpus[:4]
	}

	c.printf("Prepared-graph amortization (corpus graphs, min of %d reps)\n", reps)
	c.printf("%-16s %4s %4s %8s %12s %10s %10s %8s %10s\n",
		"graph", "k", "q", "seeds", "prologueMs", "coldMs", "warmMs", "speedup", "allocs/op")

	report := PrepareBenchReport{Tool: "kplexbench -ext prepare", Reps: reps, ZeroAllocSteadyDone: true}
	var sumSpeedup float64
	for _, cg := range corpus {
		g := cg.Build()
		for _, kq := range prepareBenchCombos(cg.Name) {
			k, q := kq[0], kq[1]
			opts := kplex.NewOptions(k, q)
			opts.Threads = 1 // deterministic latency; the prologue cost is thread-independent

			// One measured handle per cell plays the kplexd prepared cache.
			cached, err := kplex.Prepare(g, opts)
			if err != nil {
				return fmt.Errorf("%s k=%d q=%d: %w", cg.Name, k, q, err)
			}

			cell := PrepareBenchCell{Graph: cg.Name, K: k, Q: q, Seeds: cached.SeedSpace()}
			prologue, cold, warm := time.Duration(1<<62), time.Duration(1<<62), time.Duration(1<<62)
			for r := 0; r < reps; r++ {
				t0 := time.Now()
				p, err := kplex.Prepare(g, opts)
				if err != nil {
					return err
				}
				dPrologue := time.Since(t0)
				res, err := kplex.RunPrepared(context.Background(), p, opts)
				if err != nil {
					return err
				}
				dCold := time.Since(t0)
				cell.Count = res.Count

				t1 := time.Now()
				if _, err := kplex.RunPrepared(context.Background(), cached, opts); err != nil {
					return err
				}
				dWarm := time.Since(t1)

				prologue = min(prologue, dPrologue)
				cold = min(cold, dCold)
				warm = min(warm, dWarm)
			}
			cell.PrologueMS = float64(prologue) / float64(time.Millisecond)
			cell.ColdMS = float64(cold) / float64(time.Millisecond)
			cell.WarmMS = float64(warm) / float64(time.Millisecond)
			if warm > 0 {
				cell.Speedup = float64(cold) / float64(warm)
			}

			allocs, err := kplex.SeedBuildAllocsPerOp(g, opts)
			if err != nil {
				return err
			}
			cell.SeedBuildAllocs = allocs
			if allocs > report.MaxSeedBuildAllocs {
				report.MaxSeedBuildAllocs = allocs
			}
			if allocs != 0 {
				report.ZeroAllocSteadyDone = false
			}

			sumSpeedup += cell.Speedup
			if report.MinSpeedup == 0 || cell.Speedup < report.MinSpeedup {
				report.MinSpeedup = cell.Speedup
			}
			report.Cells = append(report.Cells, cell)
			c.printf("%-16s %4d %4d %8d %12.3f %10.3f %10.3f %7.2fx %10.1f\n",
				cg.Name, k, q, cell.Seeds, cell.PrologueMS, cell.ColdMS, cell.WarmMS, cell.Speedup, allocs)
		}
	}
	if len(report.Cells) > 0 {
		report.MeanSpeedup = sumSpeedup / float64(len(report.Cells))
	}
	c.printf("mean repeat-query speedup %.2fx, min %.2fx; max seed-build allocs/op %.1f\n",
		report.MeanSpeedup, report.MinSpeedup, report.MaxSeedBuildAllocs)

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(data, '\n'), 0o644)
}
