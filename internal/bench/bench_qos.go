package bench

// The QoS benchmark: (1) weighted-fair admission — two tenants with a 3:1
// weight ratio saturate a small slot pool with fixed-hold work and the
// measured goodput shares must track the weights; (2) seed-sampling
// estimates — every golden-corpus cell is enumerated exactly and under a
// 0.1 sampling rate, recording speedup, relative error and whether the
// exact count falls inside the reported 95% confidence interval. The
// snapshot (BENCH_qos.json) pins both service-level properties across PRs.

import (
	"context"
	"encoding/json"
	"hash/fnv"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gen"
	"repro/internal/kplex"
	"repro/internal/qos"
)

// QoSTenantGoodput is one tenant's share of a saturated slot pool.
type QoSTenantGoodput struct {
	Name      string  `json:"name"`
	Weight    float64 `json:"weight"`
	Completed int64   `json:"completed"`
	Share     float64 `json:"share"`     // completed / total
	WantShare float64 `json:"wantShare"` // weight / sum(weights)
	DevPct    float64 `json:"devPct"`    // |share - wantShare| / wantShare * 100
}

// QoSFairnessReport is the weighted-fair admission half of BENCH_qos.json.
type QoSFairnessReport struct {
	Slots      int                `json:"slots"`
	HoldMS     float64            `json:"holdMs"`     // slot hold per admitted unit of work
	DurationMS float64            `json:"durationMs"` // saturation window
	Tenants    []QoSTenantGoodput `json:"tenants"`
	MaxDevPct  float64            `json:"maxDevPct"`
}

// QoSSampleCell is one golden-corpus cell measured exactly and sampled.
type QoSSampleCell struct {
	Graph         string  `json:"graph"`
	K             int     `json:"k"`
	Q             int     `json:"q"`
	Seeds         int     `json:"seeds"`
	SampledSeeds  int     `json:"sampledSeeds"`
	RateRequested float64 `json:"rateRequested"`
	RateEffective float64 `json:"rateEffective"` // after the min-sample floor
	ExactCount    int64   `json:"exactCount"`
	Estimate      float64 `json:"estimate"`
	CI95Lo        float64 `json:"ci95Lo"`
	CI95Hi        float64 `json:"ci95Hi"`
	RelErrPct     float64 `json:"relErrPct"`
	Covered       bool    `json:"covered"` // exact inside [ci95Lo, ci95Hi]
	ExactMS       float64 `json:"exactMs"`
	SampleMS      float64 `json:"sampleMs"`
	Speedup       float64 `json:"speedup"`
}

// QoSBenchReport is the BENCH_qos.json document. CICoverage is measured
// the same way the engine's acceptance test does: per-seed counts are
// independent, so one exact enumeration per cell yields the ground-truth
// vector and the coverage sweep re-draws the sample under many salts
// without re-enumerating.
type QoSBenchReport struct {
	Tool          string            `json:"tool"`
	Threads       int               `json:"threads"`
	Fairness      QoSFairnessReport `json:"fairness"`
	SampleRate    float64           `json:"sampleRate"`
	Cells         []QoSSampleCell   `json:"cells"`
	CoverageDraws int               `json:"coverageDraws"` // cells x salts with a variance estimate
	CICoverage    float64           `json:"ciCoverage"`    // fraction of draws with exact inside the CI
	MeanRelErr    float64           `json:"meanRelErrPct"`
	MeanSpeedup   float64           `json:"meanSpeedup"`
}

// qosFairness saturates a slot pool from two tenants with a 3:1 weight
// ratio. Every admitted unit of work holds its slot for the same fixed
// time, so completed counts are a direct read of the admission shares the
// stride scheduler granted.
func (c *Config) qosFairness() QoSFairnessReport {
	const slots = 4
	hold := 2 * time.Millisecond
	dur := 1500 * time.Millisecond
	if c.Quick {
		dur = 500 * time.Millisecond
	}
	tenants := []qos.TenantConfig{
		{Name: "gold", Weight: 3},
		{Name: "bronze", Weight: 1},
	}
	ctrl := qos.NewController(slots, tenants)

	ctx, cancel := context.WithTimeout(context.Background(), dur)
	defer cancel()
	counts := make([]int64, len(tenants))
	var wg sync.WaitGroup
	for ti := range tenants {
		// More greedy workers per tenant than slots: both tenants always
		// have a waiter queued, which is the regime weighted fairness is
		// defined over.
		for w := 0; w < 2*slots; w++ {
			wg.Add(1)
			go func(ti int) {
				defer wg.Done()
				for {
					release, err := ctrl.Admit(ctx, tenants[ti].Name)
					if err != nil {
						return
					}
					time.Sleep(hold)
					release()
					atomic.AddInt64(&counts[ti], 1)
				}
			}(ti)
		}
	}
	wg.Wait()

	report := QoSFairnessReport{
		Slots:      slots,
		HoldMS:     float64(hold) / float64(time.Millisecond),
		DurationMS: float64(dur) / float64(time.Millisecond),
	}
	var total int64
	var weightSum float64
	for ti := range tenants {
		total += counts[ti]
		weightSum += tenants[ti].Weight
	}
	for ti, tc := range tenants {
		tg := QoSTenantGoodput{
			Name:      tc.Name,
			Weight:    tc.Weight,
			Completed: counts[ti],
			WantShare: tc.Weight / weightSum,
		}
		if total > 0 {
			tg.Share = float64(counts[ti]) / float64(total)
			tg.DevPct = math.Abs(tg.Share-tg.WantShare) / tg.WantShare * 100
		}
		if tg.DevPct > report.MaxDevPct {
			report.MaxDevPct = tg.DevPct
		}
		report.Tenants = append(report.Tenants, tg)
	}
	return report
}

// qosBenchCombos mirrors the golden-corpus cells, the same grid the
// engine-level sampling tests verify coverage on.
func qosBenchCombos(name string) [][2]int {
	switch name {
	case "gnp-dense":
		return [][2]int{{2, 6}, {3, 7}}
	case "regular-flat":
		return [][2]int{{2, 4}, {3, 6}}
	default:
		return [][2]int{{2, 6}, {3, 8}}
	}
}

// qosSampleSalt derives the deterministic per-cell sampling salt, the same
// construction the server uses (graph identity + cell + rate).
func qosSampleSalt(name string, k, q int, rate float64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{byte(k), byte(q), byte(rate * 100)})
	return h.Sum64()
}

// coverageSweep re-draws a cell's sample under a spread of salts against
// the exact per-seed count vector and reports how many of the draws'
// 95% confidence intervals covered the exact total. Seed groups are
// independent, so a draw's raw counts are exactly the selected entries of
// the vector and the sweep costs no further enumeration.
func coverageSweep(perSeed []int64, eff float64) (draws, covered int) {
	salts := []uint64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610, 987}
	var exact int64
	for _, n := range perSeed {
		exact += n
	}
	for _, salt := range salts {
		skip, kept, err := kplex.SampleSeeds(len(perSeed), eff, salt)
		if err != nil {
			continue
		}
		sampled := make([]int64, 0, kept)
		for s := range perSeed {
			if !skip.Contains(s) {
				sampled = append(sampled, perSeed[s])
			}
		}
		est := kplex.EstimateCount(len(perSeed), sampled, eff)
		if est.SampledSeeds < 2 {
			continue // no variance estimate possible
		}
		draws++
		if float64(exact) >= est.CI95Lo && float64(exact) <= est.CI95Hi {
			covered++
		}
	}
	return draws, covered
}

// QoSBench measures weighted-fair goodput and sampling-estimate quality,
// writing the JSON snapshot to jsonPath (plus a table to Config.Out).
func (c *Config) QoSBench(jsonPath string) error {
	const rate = 0.1
	threads := c.threads()
	report := QoSBenchReport{Tool: "kplexbench -ext qos", Threads: threads, SampleRate: rate}

	c.printf("QoS benchmark: weighted-fair admission and sampling estimates (threads=%d)\n", threads)
	report.Fairness = c.qosFairness()
	for _, tg := range report.Fairness.Tenants {
		c.printf("tenant %-8s weight %.0f: %5d completed, share %.3f (want %.3f, dev %.1f%%)\n",
			tg.Name, tg.Weight, tg.Completed, tg.Share, tg.WantShare, tg.DevPct)
	}

	c.printf("%-16s %3s %3s %6s %7s %10s %12s %10s %8s %8s\n",
		"graph", "k", "q", "seeds", "n", "exact", "estimate", "relerr", "covered", "speedup")
	var draws, covered int
	for _, cg := range gen.Corpus() {
		g := cg.Build()
		for _, kq := range qosBenchCombos(cg.Name) {
			k, q := kq[0], kq[1]
			cell := QoSSampleCell{Graph: cg.Name, K: k, Q: q, RateRequested: rate}

			opts := kplex.NewOptions(k, q)
			opts.Threads = threads
			total, err := kplex.SeedSpace(g, opts)
			if err != nil {
				return err
			}
			cell.Seeds = total

			// The exact run also records the per-seed count vector: seed
			// groups are independent, so the coverage sweep below re-draws
			// samples from it without re-enumerating.
			var exactMu sync.Mutex
			exactPerSeed := make([]int64, total)
			opts.OnPlexSeed = func(seed int, _ []int) {
				exactMu.Lock()
				exactPerSeed[seed]++
				exactMu.Unlock()
			}
			exactStart := time.Now()
			res, err := kplex.Run(context.Background(), g, opts)
			if err != nil {
				return err
			}
			cell.ExactMS = float64(time.Since(exactStart)) / float64(time.Millisecond)
			cell.ExactCount = res.Count

			eff := kplex.EffectiveSampleRate(total, rate, 0)
			cell.RateEffective = eff
			skip, kept, err := kplex.SampleSeeds(total, eff, qosSampleSalt(cg.Name, k, q, eff))
			if err != nil {
				return err
			}
			var mu sync.Mutex
			perSeed := make(map[int]int64, kept)
			sopts := opts
			sopts.SkipSeeds = skip
			sopts.OnPlexSeed = func(seed int, _ []int) {
				mu.Lock()
				perSeed[seed]++
				mu.Unlock()
			}
			sampleStart := time.Now()
			if _, err := kplex.Run(context.Background(), g, sopts); err != nil {
				return err
			}
			cell.SampleMS = float64(time.Since(sampleStart)) / float64(time.Millisecond)

			counts := make([]int64, 0, kept)
			for seed := 0; seed < total; seed++ {
				if !skip.Contains(seed) {
					counts = append(counts, perSeed[seed])
				}
			}
			est := kplex.EstimateCount(total, counts, eff)
			cell.SampledSeeds = est.SampledSeeds
			cell.Estimate = est.Count
			cell.CI95Lo, cell.CI95Hi = est.CI95Lo, est.CI95Hi
			if cell.ExactCount > 0 {
				cell.RelErrPct = math.Abs(est.Count-float64(cell.ExactCount)) / float64(cell.ExactCount) * 100
			}
			cell.Covered = float64(cell.ExactCount) >= est.CI95Lo && float64(cell.ExactCount) <= est.CI95Hi
			if cell.SampleMS > 0 {
				cell.Speedup = cell.ExactMS / cell.SampleMS
			}
			d, dc := coverageSweep(exactPerSeed, eff)
			draws += d
			covered += dc
			report.Cells = append(report.Cells, cell)
			c.printf("%-16s %3d %3d %6d %7d %10d %12.1f %9.2f%% %8v %7.2fx\n",
				cg.Name, k, q, cell.Seeds, cell.SampledSeeds, cell.ExactCount,
				cell.Estimate, cell.RelErrPct, cell.Covered, cell.Speedup)
		}
	}

	if n := len(report.Cells); n > 0 {
		var relSum, spdSum float64
		for _, cell := range report.Cells {
			relSum += cell.RelErrPct
			spdSum += cell.Speedup
		}
		report.MeanRelErr = relSum / float64(n)
		report.MeanSpeedup = spdSum / float64(n)
	}
	report.CoverageDraws = draws
	if draws > 0 {
		report.CICoverage = float64(covered) / float64(draws)
	}
	c.printf("fairness max deviation %.1f%%; CI coverage %.0f%% over %d draws, mean relerr %.2f%%, mean speedup %.2fx\n",
		report.Fairness.MaxDevPct, report.CICoverage*100, draws, report.MeanRelErr, report.MeanSpeedup)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	c.printf("wrote %s\n", jsonPath)
	return nil
}
