package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/gen"
	"repro/internal/kplex"
)

// The batched-sweep benchmark: how much a multi-cell parameter sweep —
// the same graph queried at several q thresholds, the histogram/dashboard
// workload kplexd's POST /batch serves — saves by sharing one prologue
// and one seed-space traversal per k group (kplex.RunBatch) versus
// executing each cell as its own full run. The prepared cache alone
// cannot help across cells: each (k, q) cell needs its own handle, so
// the sweep's sequential cost keeps one prologue and one walk per cell,
// while the batch pays one of each at the loosest q.

// BatchBenchSweep is one measured sweep (graph × q-cells at fixed k).
type BatchBenchSweep struct {
	Graph   string  `json:"graph"`
	K       int     `json:"k"`
	Qs      []int   `json:"qs"`
	Counts  []int64 `json:"counts"`  // per-cell result counts (batch == sequential, verified)
	Seeds   int     `json:"seeds"`   // seed space of the shared traversal
	SeqMS   float64 `json:"seqMs"`   // sum of standalone Run calls, one per cell
	BatchMS float64 `json:"batchMs"` // one RunBatch over all cells
	Speedup float64 `json:"speedup"` // SeqMS / BatchMS
}

// BatchBenchReport is the BENCH_batch.json document.
type BatchBenchReport struct {
	Tool        string            `json:"tool"`
	Reps        int               `json:"reps"`
	Cells       int               `json:"cellsPerSweep"`
	Sweeps      []BatchBenchSweep `json:"sweeps"`
	MeanSpeedup float64           `json:"meanSpeedup"`
	MinSpeedup  float64           `json:"minSpeedup"`
	MaxSpeedup  float64           `json:"maxSpeedup"`
}

// batchBenchSweepCells returns the 4-cell q-sweep measured for a corpus
// graph: thresholds rising from where the graph's plexes live, so the
// stricter cells are prologue-heavy (their own enumerations prune to
// almost nothing, which is exactly where per-cell full runs waste the
// most).
func batchBenchSweepCells(name string) (int, []int) {
	switch name {
	case "gnp-dense":
		return 2, []int{7, 8, 9, 10}
	case "regular-flat":
		return 2, []int{5, 6, 7, 8}
	default:
		return 2, []int{8, 10, 12, 14}
	}
}

// BatchBench measures sweep amortization over the corpus graphs and
// writes the machine-readable snapshot to jsonPath.
func (c *Config) BatchBench(jsonPath string) error {
	reps := 7
	if c.Quick {
		reps = 5
	}
	corpus := gen.Corpus()
	if c.Quick {
		corpus = corpus[:4]
	}

	c.printf("Batched q-sweeps vs sequential per-cell runs (min of %d reps)\n", reps)
	c.printf("%-16s %3s %-16s %8s %10s %10s %8s\n",
		"graph", "k", "qs", "seeds", "seqMs", "batchMs", "speedup")

	report := BatchBenchReport{Tool: "kplexbench -ext batch", Reps: reps, Cells: 4}
	var sum float64
	for _, cg := range corpus {
		g := cg.Build()
		k, qs := batchBenchSweepCells(cg.Name)
		sweep := BatchBenchSweep{Graph: cg.Name, K: k, Qs: qs}

		queries := make([]kplex.BatchQuery, len(qs))
		for i, q := range qs {
			opts := kplex.NewOptions(k, q)
			opts.Threads = 1 // deterministic latency, as in the prepare bench
			queries[i] = kplex.BatchQuery{Opts: opts}
		}

		seq, batch := time.Duration(1<<62), time.Duration(1<<62)
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			seqCounts := make([]int64, len(qs))
			for i := range queries {
				res, err := kplex.Run(context.Background(), g, queries[i].Opts)
				if err != nil {
					return fmt.Errorf("%s k=%d q=%d: %w", cg.Name, k, qs[i], err)
				}
				seqCounts[i] = res.Count
			}
			dSeq := time.Since(t0)

			t1 := time.Now()
			results, err := kplex.RunBatch(context.Background(), g, queries)
			if err != nil {
				return fmt.Errorf("%s batch: %w", cg.Name, err)
			}
			dBatch := time.Since(t1)

			sweep.Counts = sweep.Counts[:0]
			for i, br := range results {
				if br.Count != seqCounts[i] {
					return fmt.Errorf("%s k=%d q=%d: batch count %d != sequential %d",
						cg.Name, k, qs[i], br.Count, seqCounts[i])
				}
				sweep.Counts = append(sweep.Counts, br.Count)
			}
			seq = min(seq, dSeq)
			batch = min(batch, dBatch)
		}

		p, err := kplex.Prepare(g, queries[0].Opts)
		if err != nil {
			return err
		}
		sweep.Seeds = p.SeedSpace()
		sweep.SeqMS = float64(seq) / float64(time.Millisecond)
		sweep.BatchMS = float64(batch) / float64(time.Millisecond)
		if batch > 0 {
			sweep.Speedup = float64(seq) / float64(batch)
		}
		sum += sweep.Speedup
		if report.MinSpeedup == 0 || sweep.Speedup < report.MinSpeedup {
			report.MinSpeedup = sweep.Speedup
		}
		if sweep.Speedup > report.MaxSpeedup {
			report.MaxSpeedup = sweep.Speedup
		}
		report.Sweeps = append(report.Sweeps, sweep)
		qlabel := ""
		for i, q := range qs {
			if i > 0 {
				qlabel += ","
			}
			qlabel += fmt.Sprint(q)
		}
		c.printf("%-16s %3d %-16s %8d %10.3f %10.3f %7.2fx\n",
			cg.Name, k, qlabel, sweep.Seeds, sweep.SeqMS, sweep.BatchMS, sweep.Speedup)
	}
	if len(report.Sweeps) > 0 {
		report.MeanSpeedup = sum / float64(len(report.Sweeps))
	}
	c.printf("mean sweep speedup %.2fx, min %.2fx, max %.2fx\n",
		report.MeanSpeedup, report.MinSpeedup, report.MaxSpeedup)

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(data, '\n'), 0o644)
}
