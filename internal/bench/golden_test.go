package bench

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/kplex"
)

// TestGoldenCounts pins the exact result counts of the cheap suite cells.
// The numbers were produced by the full harness run and are cross-validated
// by the oracle-equality tests in internal/kplex; their job here is to
// catch regressions in any pruning rule or in a generator's determinism
// (these counts change if a single edge moves).
func TestGoldenCounts(t *testing.T) {
	cases := []struct {
		dataset string
		k, q    int
		want    int64
	}{
		{"jazz-syn", 2, 6, 50},
		{"jazz-syn", 4, 9, 12},
		{"lastfm-syn", 2, 8, 2429},
		{"lastfm-syn", 3, 10, 11567},
		{"as-caida-syn", 2, 8, 9714},
		{"email-syn", 2, 8, 16548},
		{"dblp-syn", 2, 10, 2214},
		{"dblp-syn", 3, 8, 120},
		{"dblp-syn", 4, 10, 120},
		{"amazon-syn", 2, 4, 8301},
		{"amazon-syn", 3, 6, 860},
		{"amazon-syn", 4, 8, 39},
		{"pokec-syn", 2, 6, 3028},
		{"pokec-syn", 3, 8, 9289},
	}
	gcache := map[string]*graph.Graph{}
	for _, c := range cases {
		if gcache[c.dataset] == nil {
			d, ok := ByName(c.dataset)
			if !ok {
				t.Fatalf("dataset %s missing", c.dataset)
			}
			gcache[c.dataset] = d.Build()
		}
	}
	for _, c := range cases {
		m, err := Run(gcache[c.dataset], kplex.NewOptions(c.k, c.q))
		if err != nil {
			t.Fatalf("%s k=%d q=%d: %v", c.dataset, c.k, c.q, err)
		}
		if m.Count != c.want {
			t.Errorf("%s k=%d q=%d: count = %d, want %d",
				c.dataset, c.k, c.q, m.Count, c.want)
		}
	}
}
