package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kplex"
)

// The seed-kernel benchmark: what the bit-parallel dense peel buys over the
// merge-based peel it routes around under Options.DenseCrossover. The
// kernel choice only touches seed-graph construction, so each cell times a
// full seed-build pass (every seed, engine-style scratch reuse) under both
// kernels, plus the end-to-end enumeration under both, and — because a fast
// wrong kernel is worse than no kernel — re-verifies in-bench that the two
// paths enumerate identical plex counts. The snapshot (BENCH_kernels.json)
// is published by CI's bench-kernels-smoke job.

// KernelsBenchCell is one (graph, k, q) measurement.
type KernelsBenchCell struct {
	Graph string `json:"graph"`
	N     int    `json:"n"`
	K     int    `json:"k"`
	Q     int    `json:"q"`

	Builds      int   `json:"builds"`      // non-nil seed graphs per pass
	DenseBuilds int64 `json:"denseBuilds"` // builds through the dense peel (dense pass)
	Count       int64 `json:"count"`       // plexes enumerated (equal under both kernels)

	MergeBuildMS float64 `json:"mergeBuildMs"` // seed-build pass, merge peel (DenseCrossover = -1)
	DenseBuildMS float64 `json:"denseBuildMs"` // seed-build pass, dense peel forced
	BuildSpeedup float64 `json:"buildSpeedup"` // MergeBuildMS / DenseBuildMS

	MergeRunMS float64 `json:"mergeRunMs"` // full enumeration, merge peel
	DenseRunMS float64 `json:"denseRunMs"` // full enumeration, dense peel
	RunSpeedup float64 `json:"runSpeedup"` // MergeRunMS / DenseRunMS

	CountsEqual bool `json:"countsEqual"`
}

// KernelsBenchReport is the BENCH_kernels.json document.
type KernelsBenchReport struct {
	Tool            string             `json:"tool"`
	Reps            int                `json:"reps"`
	Cells           []KernelsBenchCell `json:"cells"`
	MaxBuildSpeedup float64            `json:"maxBuildSpeedup"`
	MaxRunSpeedup   float64            `json:"maxRunSpeedup"`
	AllCountsEqual  bool               `json:"allCountsEqual"`
}

// kernelsBenchGraph is one benchmark graph: the corpus dense cells plus
// larger synthetic graphs where N¹ is wide enough for word-parallelism to
// matter (the corpus tops out at 200 vertices; the kernel's stride
// advantage grows with |N¹|).
type kernelsBenchGraph struct {
	name  string
	build func() *graph.Graph
}

func kernelsBenchGraphs(quick bool) []kernelsBenchGraph {
	gs := []kernelsBenchGraph{
		{"gnp-dense", func() *graph.Graph { return gen.GNP(70, 0.22, 44) }},
		{"gnp-300", func() *graph.Graph { return gen.GNP(300, 0.3, 13) }},
		{"ba-400-hubs", func() *graph.Graph { return gen.BarabasiAlbert(400, 20, 13) }},
	}
	if !quick {
		gs = append(gs,
			kernelsBenchGraph{"gnp-500", func() *graph.Graph { return gen.GNP(500, 0.18, 13) }},
			kernelsBenchGraph{"regular-300", func() *graph.Graph { return gen.RandomRegular(300, 40, 13) }},
		)
	}
	return gs
}

// kernelsBenchCombos are the (k, q) cells, per graph: all with q > 2k so
// the Corollary 5.2 peel — the code the two kernels implement differently —
// is live, and with q strict enough that the run stays build-dominated
// (most seeds peel to below q-k and never branch), which is both where the
// kernel shows up end-to-end and what keeps the dense graphs tractable: a
// loose q on GNP(300, 0.3) enumerates astronomically many plexes.
func kernelsBenchCombos(name string) [][2]int {
	switch name {
	case "gnp-dense":
		return [][2]int{{2, 6}, {3, 7}} // the golden cells: non-zero counts for the differential
	case "gnp-300":
		return [][2]int{{2, 12}, {3, 14}}
	case "ba-400-hubs":
		return [][2]int{{2, 14}, {3, 16}}
	case "gnp-500":
		return [][2]int{{2, 11}, {3, 13}}
	default: // regular-300
		return [][2]int{{2, 10}}
	}
}

// KernelsBench measures the dense-vs-merge seed kernels and writes the
// machine-readable snapshot to jsonPath.
func (c *Config) KernelsBench(jsonPath string) error {
	reps := 9
	if c.Quick {
		reps = 5
	}

	c.printf("Seed-kernel dense-vs-merge (min of %d reps; dense = bit-parallel peel)\n", reps)
	c.printf("%-14s %6s %3s %3s %7s %11s %11s %8s %10s %10s %8s\n",
		"graph", "n", "k", "q", "builds", "mergeBldMs", "denseBldMs", "bldSpd", "mergeRunMs", "denseRunMs", "runSpd")

	report := KernelsBenchReport{Tool: "kplexbench -ext kernels", Reps: reps, AllCountsEqual: true}
	for _, bg := range kernelsBenchGraphs(c.Quick) {
		g := bg.build()
		for _, kq := range kernelsBenchCombos(bg.name) {
			k, q := kq[0], kq[1]
			cell := KernelsBenchCell{Graph: bg.name, N: g.N(), K: k, Q: q}

			merge := kplex.NewOptions(k, q)
			merge.Threads = 1
			merge.DenseCrossover = -1
			dense := merge
			dense.DenseCrossover = 1 << 20 // every seed through the dense peel

			mergePass, builds, _, err := kplex.SeedBuildPass(g, merge, reps)
			if err != nil {
				return fmt.Errorf("%s k=%d q=%d: %w", bg.name, k, q, err)
			}
			densePass, _, denseBuilds, err := kplex.SeedBuildPass(g, dense, reps)
			if err != nil {
				return fmt.Errorf("%s k=%d q=%d: %w", bg.name, k, q, err)
			}
			cell.Builds = builds
			cell.DenseBuilds = denseBuilds
			cell.MergeBuildMS = float64(mergePass) / float64(time.Millisecond)
			cell.DenseBuildMS = float64(densePass) / float64(time.Millisecond)
			if densePass > 0 {
				cell.BuildSpeedup = float64(mergePass) / float64(densePass)
			}

			mergeRun, mergeCount, err := kernelsTimedRun(g, merge, reps)
			if err != nil {
				return fmt.Errorf("%s k=%d q=%d: %w", bg.name, k, q, err)
			}
			denseRun, denseCount, err := kernelsTimedRun(g, dense, reps)
			if err != nil {
				return fmt.Errorf("%s k=%d q=%d: %w", bg.name, k, q, err)
			}
			cell.Count = denseCount
			cell.CountsEqual = mergeCount == denseCount
			if !cell.CountsEqual {
				report.AllCountsEqual = false
			}
			cell.MergeRunMS = float64(mergeRun) / float64(time.Millisecond)
			cell.DenseRunMS = float64(denseRun) / float64(time.Millisecond)
			if denseRun > 0 {
				cell.RunSpeedup = float64(mergeRun) / float64(denseRun)
			}

			if cell.BuildSpeedup > report.MaxBuildSpeedup {
				report.MaxBuildSpeedup = cell.BuildSpeedup
			}
			if cell.RunSpeedup > report.MaxRunSpeedup {
				report.MaxRunSpeedup = cell.RunSpeedup
			}
			report.Cells = append(report.Cells, cell)
			c.printf("%-14s %6d %3d %3d %7d %11.3f %11.3f %7.2fx %10.3f %10.3f %7.2fx\n",
				bg.name, g.N(), k, q, builds, cell.MergeBuildMS, cell.DenseBuildMS, cell.BuildSpeedup,
				cell.MergeRunMS, cell.DenseRunMS, cell.RunSpeedup)
			if !cell.CountsEqual {
				c.printf("  !! COUNT MISMATCH: merge=%d dense=%d\n", mergeCount, denseCount)
			}
		}
	}
	c.printf("max build speedup %.2fx, max run speedup %.2fx, counts equal: %v\n",
		report.MaxBuildSpeedup, report.MaxRunSpeedup, report.AllCountsEqual)

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(data, '\n'), 0o644)
}

// kernelsTimedRun is the min-of-reps full enumeration for one option set,
// returning the plex count for the in-bench differential check.
func kernelsTimedRun(g *graph.Graph, opts kplex.Options, reps int) (time.Duration, int64, error) {
	p, err := kplex.Prepare(g, opts)
	if err != nil {
		return 0, 0, err
	}
	best := time.Duration(1<<63 - 1)
	var count int64
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		res, err := kplex.RunPrepared(context.Background(), p, opts)
		if err != nil {
			return 0, 0, err
		}
		if d := time.Since(t0); d < best {
			best = d
		}
		count = res.Count
	}
	return best, count, nil
}
