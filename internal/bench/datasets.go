// Package bench contains the evaluation harness: the synthetic dataset
// suite standing in for the paper's Table 2 graphs, and one runner per
// table/figure of the paper's Section 7 that prints the corresponding rows
// or series. Absolute times differ from the paper (different hardware,
// language and datasets); the comparisons between algorithms are what the
// harness reproduces.
package bench

import (
	"fmt"
	"sort"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Class partitions datasets by size the way Section 7 does.
type Class string

const (
	Small  Class = "small"
	Medium Class = "medium"
	Large  Class = "large"
	// Stress marks workloads built for a specific stress scenario rather
	// than a paper dataset; they are excluded from the paper-reproduction
	// tables and figures and picked up by name where needed.
	Stress Class = "stress"
)

// Dataset is a named synthetic graph. Build is deterministic (fixed seed),
// so every run of the harness sees identical inputs.
type Dataset struct {
	Name   string
	Class  Class
	Analog string // the Table 2 graph this stands in for
	Build  func() *graph.Graph
	// Params lists the (k, q) pairs the paper-style experiments use on
	// this dataset, scaled to the synthetic sizes.
	Params []KQ
}

// KQ is one (k, q) experiment setting.
type KQ struct{ K, Q int }

// Suite returns the full dataset suite, ordered small to large. The
// generators are chosen so that degree skew, degeneracy and community
// structure track the corresponding real dataset class: GNP for the small
// dense collaboration graph, Chung-Lu power laws for the social graphs,
// Barabási-Albert for pokec-style growth networks, RMAT for web crawls,
// and planted communities for com-dblp (which is itself a network with
// strong ground-truth communities).
func Suite() []Dataset {
	return []Dataset{
		{
			Name: "jazz-syn", Class: Small, Analog: "jazz",
			Build:  func() *graph.Graph { return gen.GNP(198, 0.14, 101) },
			Params: []KQ{{2, 6}, {3, 6}, {4, 9}},
		},
		{
			Name: "wiki-vote-syn", Class: Small, Analog: "wiki-vote",
			Build:  func() *graph.Graph { return gen.ChungLu(2000, 28, 2.15, 102) },
			Params: []KQ{{2, 12}, {3, 24}, {4, 30}},
		},
		{
			Name: "lastfm-syn", Class: Small, Analog: "lastfm",
			Build:  func() *graph.Graph { return gen.ChungLu(2400, 8, 2.4, 103) },
			Params: []KQ{{2, 8}, {3, 10}, {4, 12}},
		},
		{
			Name: "as-caida-syn", Class: Medium, Analog: "as-caida",
			Build:  func() *graph.Graph { return gen.ChungLu(5000, 4, 2.1, 104) },
			Params: []KQ{{2, 8}, {3, 10}, {4, 14}},
		},
		{
			Name: "epinions-syn", Class: Medium, Analog: "soc-epinions",
			Build:  func() *graph.Graph { return gen.ChungLu(4000, 22, 2.15, 105) },
			Params: []KQ{{2, 14}, {3, 28}, {4, 34}},
		},
		{
			Name: "slashdot-syn", Class: Medium, Analog: "soc-slashdot",
			Build:  func() *graph.Graph { return gen.ChungLu(4500, 20, 2.2, 106) },
			Params: []KQ{{2, 14}, {3, 28}, {4, 32}},
		},
		{
			Name: "email-syn", Class: Medium, Analog: "email-euall",
			Build:  func() *graph.Graph { return gen.ChungLu(6000, 6, 2.25, 107) },
			Params: []KQ{{2, 8}, {3, 10}, {4, 14}},
		},
		{
			Name: "dblp-syn", Class: Medium, Analog: "com-dblp",
			Build: func() *graph.Graph {
				return gen.Planted(gen.PlantedConfig{
					N: 6000, BackgroundP: 0.0008, Communities: 120,
					CommSize: 14, DropPerV: 2, Overlap: 3, Seed: 108,
				})
			},
			Params: []KQ{{2, 10}, {3, 8}, {4, 10}},
		},
		{
			Name: "amazon-syn", Class: Medium, Analog: "amazon0505",
			Build:  func() *graph.Graph { return gen.ChungLu(8000, 6, 2.9, 109) },
			Params: []KQ{{2, 4}, {3, 6}, {4, 8}},
		},
		{
			Name: "pokec-syn", Class: Medium, Analog: "soc-pokec",
			Build:  func() *graph.Graph { return gen.BarabasiAlbert(6000, 9, 110) },
			Params: []KQ{{2, 6}, {3, 8}, {4, 10}},
		},
		{
			Name: "skitter-syn", Class: Medium, Analog: "as-skitter",
			Build:  func() *graph.Graph { return gen.RMAT(13, 7, 0.57, 0.19, 0.19, 111) },
			Params: []KQ{{2, 22}, {3, 26}},
		},
		{
			Name: "enwiki-syn", Class: Large, Analog: "enwiki-2021",
			Build:  func() *graph.Graph { return gen.ChungLu(30000, 22, 2.2, 112) },
			Params: []KQ{{2, 52}, {3, 60}},
		},
		{
			Name: "arabic-syn", Class: Large, Analog: "arabic-2005",
			Build: func() *graph.Graph {
				return gen.Planted(gen.PlantedConfig{
					N: 30000, BackgroundP: 0.0002, Communities: 250,
					CommSize: 22, DropPerV: 2, Overlap: 4, Seed: 113,
				})
			},
			Params: []KQ{{2, 4}, {3, 8}},
		},
		{
			Name: "uk-syn", Class: Large, Analog: "uk-2005",
			Build:  func() *graph.Graph { return gen.BarabasiAlbert(25000, 11, 114) },
			Params: []KQ{{2, 6}, {3, 8}},
		},
		{
			Name: "it-syn", Class: Large, Analog: "it-2004",
			Build:  func() *graph.Graph { return gen.RMAT(14, 6, 0.57, 0.19, 0.19, 115) },
			Params: []KQ{{2, 24}, {3, 28}},
		},
		{
			Name: "webbase-syn", Class: Large, Analog: "webbase-2001",
			Build:  func() *graph.Graph { return gen.ChungLu(40000, 12, 2.35, 116) },
			Params: []KQ{{2, 16}, {3, 30}},
		},
		{
			// Overlapping planted communities of very different local
			// density: a few seeds own almost all of the search tree, the
			// worst case for the stage barrier and the workload the
			// scheduler ablation (TableScheduler) is built around.
			Name: "straggler-syn", Class: Stress, Analog: "straggler stress",
			Build: func() *graph.Graph {
				return gen.Planted(gen.PlantedConfig{
					N: 3000, BackgroundP: 0.002, Communities: 30,
					CommSize: 24, DropPerV: 2, Overlap: 6, Seed: 11,
				})
			},
			Params: []KQ{{3, 9}, {2, 8}},
		},
	}
}

// ByName returns the named dataset.
func ByName(name string) (Dataset, bool) {
	for _, d := range Suite() {
		if d.Name == name {
			return d, true
		}
	}
	return Dataset{}, false
}

// Names lists all dataset names, sorted.
func Names() []string {
	var out []string
	for _, d := range Suite() {
		out = append(out, d.Name)
	}
	sort.Strings(out)
	return out
}

// ByClass returns the datasets of one class, in suite order.
func ByClass(c Class) []Dataset {
	var out []Dataset
	for _, d := range Suite() {
		if d.Class == c {
			out = append(out, d)
		}
	}
	return out
}

// String implements a compact description for logs.
func (d Dataset) String() string {
	return fmt.Sprintf("%s(%s, analog of %s)", d.Name, d.Class, d.Analog)
}
