package graph

import "fmt"

// Stats summarises a graph the way the paper's Table 2 does: vertex and edge
// counts, maximum degree Δ and degeneracy D.
type Stats struct {
	N          int
	M          int
	MaxDegree  int
	Degeneracy int
}

// ComputeStats returns the Table-2 statistics for g. It accepts any CSR
// source, so the on-disk store's paged reader can be profiled without
// loading the graph into memory.
func ComputeStats(g CSR) Stats {
	return Stats{
		N:          g.N(),
		M:          g.M(),
		MaxDegree:  MaxDegreeOf(g),
		Degeneracy: Degeneracy(g),
	}
}

// String formats the stats as a single table row.
func (s Stats) String() string {
	return fmt.Sprintf("n=%d m=%d Δ=%d D=%d", s.N, s.M, s.MaxDegree, s.Degeneracy)
}

// AverageDegree returns 2m/n, or 0 for an empty graph.
func (s Stats) AverageDegree() float64 {
	if s.N == 0 {
		return 0
	}
	return 2 * float64(s.M) / float64(s.N)
}
