package graph

import "testing"

func TestConnectedComponents(t *testing.T) {
	// Two triangles and an isolated vertex.
	g := mustBuild(t, 7, [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}})
	comp, count := ConnectedComponents(g)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Fatal("first triangle split across components")
	}
	if comp[3] != comp[4] || comp[4] != comp[5] {
		t.Fatal("second triangle split across components")
	}
	if comp[0] == comp[3] || comp[6] == comp[0] || comp[6] == comp[3] {
		t.Fatal("distinct components merged")
	}
}

func TestConnectedComponentsEmpty(t *testing.T) {
	g := mustBuild(t, 0, nil)
	if _, count := ConnectedComponents(g); count != 0 {
		t.Fatalf("count = %d, want 0", count)
	}
}

func TestInducedDiameter(t *testing.T) {
	// Path 0-1-2-3-4 plus chord 0-2.
	g := mustBuild(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 2}})
	cases := []struct {
		set  []int
		want int
	}{
		{[]int{0}, 0},
		{[]int{0, 1}, 1},
		{[]int{0, 1, 2}, 1},       // triangle
		{[]int{0, 1, 2, 3}, 2},    // 3 is two hops from 0/1
		{[]int{0, 1, 2, 3, 4}, 3}, // 4 is three hops from 0 via 2-3
		{[]int{0, 3}, -1},         // disconnected inside the induced graph
		{nil, -1},
	}
	for _, c := range cases {
		if got := InducedDiameter(g, c.set); got != c.want {
			t.Errorf("InducedDiameter(%v) = %d, want %d", c.set, got, c.want)
		}
	}
}
