package graph

// Traversal utilities: connected components and induced-subgraph diameter.
// The enumerator itself never needs them (the diameter-2 property is used
// structurally, not checked), but the test suite verifies the paper's
// Theorem 3.3 on real output with them, and the community example reports
// component structure.

// ConnectedComponents returns a component id per vertex and the number of
// components. Ids are assigned in order of the smallest vertex in each
// component.
func ConnectedComponents(g *Graph) (comp []int32, count int) {
	n := g.N()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []int32
	for v := 0; v < n; v++ {
		if comp[v] != -1 {
			continue
		}
		id := int32(count)
		count++
		comp[v] = id
		queue = append(queue[:0], int32(v))
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(int(u)) {
				if comp[w] == -1 {
					comp[w] = id
					queue = append(queue, w)
				}
			}
		}
	}
	return comp, count
}

// InducedDiameter returns the diameter (longest shortest path, in hops) of
// the subgraph of g induced by set, or -1 if that subgraph is disconnected
// or empty. Runs one BFS per member: fine for the plex-sized sets it is
// meant for.
func InducedDiameter(g *Graph, set []int) int {
	if len(set) == 0 {
		return -1
	}
	in := make(map[int]int, len(set)) // vertex -> local index
	for i, v := range set {
		in[v] = i
	}
	diam := 0
	dist := make([]int, len(set))
	queue := make([]int, 0, len(set))
	for _, src := range set {
		for i := range dist {
			dist[i] = -1
		}
		dist[in[src]] = 0
		queue = append(queue[:0], src)
		seen := 1
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			du := dist[in[u]]
			for _, w := range g.Neighbors(u) {
				j, ok := in[int(w)]
				if !ok || dist[j] != -1 {
					continue
				}
				dist[j] = du + 1
				seen++
				if dist[j] > diam {
					diam = dist[j]
				}
				queue = append(queue, int(w))
			}
		}
		if seen != len(set) {
			return -1 // disconnected
		}
	}
	return diam
}
