package graph

import (
	"encoding/binary"
	"fmt"
)

// Prepared-handle serialization. A Prepared is the O(n+m) run prologue —
// exactly the thing a persistent catalog wants to keep warm across
// restarts — so it has a compact binary form: the relabelled working
// graph's rows in the canonical delta+varint encoding, followed by the
// toInput mapping, the later-neighbour offsets and the coreness array.
// The encoding carries no framing or checksum of its own; the kplex layer
// wraps it with version, options cell, source digest and CRC.

// EncodePrepared appends p's binary form to dst and returns it.
func EncodePrepared(dst []byte, p *Prepared) []byte {
	n := p.g.N()
	var buf [binary.MaxVarintLen64]byte
	w := binary.PutUvarint(buf[:], uint64(n))
	dst = append(dst, buf[:w]...)
	for v := 0; v < n; v++ {
		row := p.g.Neighbors(v)
		w = binary.PutUvarint(buf[:], uint64(len(row)))
		dst = append(dst, buf[:w]...)
		prev := int32(0)
		for _, u := range row {
			w = binary.PutUvarint(buf[:], uint64(u-prev))
			dst = append(dst, buf[:w]...)
			prev = u
		}
	}
	for _, arr := range [][]int32{p.toInput, p.laterOff, p.coreness} {
		for _, x := range arr {
			w = binary.PutUvarint(buf[:], uint64(x))
			dst = append(dst, buf[:w]...)
		}
	}
	return dst
}

// DecodePrepared parses a handle written by EncodePrepared. Structural
// invariants (sorted rows, ranges, offsets) are validated so a corrupt
// prologue file is rejected instead of poisoning the seed pipeline.
func DecodePrepared(data []byte) (*Prepared, error) {
	pos := 0
	read := func() (uint64, error) {
		v, w := binary.Uvarint(data[pos:])
		if w <= 0 {
			return 0, fmt.Errorf("graph: prepared decode: truncated at byte %d", pos)
		}
		pos += w
		return v, nil
	}
	n64, err := read()
	if err != nil {
		return nil, err
	}
	if n64 > 1<<31 {
		return nil, fmt.Errorf("graph: prepared decode: implausible n=%d", n64)
	}
	n := int(n64)
	offsets := make([]int32, n+1)
	var adj []int32
	for v := 0; v < n; v++ {
		deg, err := read()
		if err != nil {
			return nil, err
		}
		if deg > n64 {
			return nil, fmt.Errorf("graph: prepared decode: vertex %d degree %d exceeds n", v, deg)
		}
		prev := int64(-1)
		for j := uint64(0); j < deg; j++ {
			delta, err := read()
			if err != nil {
				return nil, err
			}
			var u int64
			if prev < 0 {
				u = int64(delta)
			} else {
				if delta == 0 {
					return nil, fmt.Errorf("graph: prepared decode: vertex %d: duplicate neighbour", v)
				}
				u = prev + int64(delta)
			}
			if u >= int64(n) || u == int64(v) {
				return nil, fmt.Errorf("graph: prepared decode: vertex %d: invalid neighbour %d", v, u)
			}
			adj = append(adj, int32(u))
			prev = u
		}
		offsets[v+1] = int32(len(adj))
	}
	p := &Prepared{
		g:        &Graph{offsets: offsets, adj: adj},
		toInput:  make([]int32, n),
		laterOff: make([]int32, n),
		coreness: make([]int32, n),
	}
	for _, arr := range [][]int32{p.toInput, p.laterOff, p.coreness} {
		for i := range arr {
			x, err := read()
			if err != nil {
				return nil, err
			}
			if x > 1<<31 {
				return nil, fmt.Errorf("graph: prepared decode: array value %d out of range", x)
			}
			arr[i] = int32(x)
		}
	}
	if pos != len(data) {
		return nil, fmt.Errorf("graph: prepared decode: %d trailing bytes", len(data)-pos)
	}
	for v := 0; v < n; v++ {
		if d := offsets[v+1] - offsets[v]; p.laterOff[v] > d {
			return nil, fmt.Errorf("graph: prepared decode: vertex %d laterOff %d exceeds degree %d", v, p.laterOff[v], d)
		}
	}
	return p, nil
}
