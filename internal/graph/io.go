package graph

// Edge-list I/O. The reader accepts the SNAP-style format used by the
// paper's datasets: one "u v" pair per line, whitespace separated, with
// '#' or '%' comment lines. Vertex ids need not be contiguous; they are
// compacted to 0..n-1 and the mapping is returned so results can be reported
// in the input's id space.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
)

// ReadResult is a parsed edge-list graph plus the id mapping back to the
// input file's vertex labels.
type ReadResult struct {
	Graph  *Graph
	OrigID []int64 // OrigID[v] = label of vertex v in the input
}

// ReadEdgeList parses a whitespace-separated edge list from r.
func ReadEdgeList(r io.Reader) (*ReadResult, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	type rawEdge struct{ u, v int64 }
	var raw []rawEdge
	labels := make(map[int64]struct{})
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		// Trim leading spaces, skip blanks and comments.
		i := 0
		for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
			i++
		}
		if i == len(line) || line[i] == '#' || line[i] == '%' {
			continue
		}
		u, next, err := parseInt(line, i)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		v, next, err := parseInt(line, next)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		// Anything after the second field (weights, timestamps) is ignored.
		_ = next
		raw = append(raw, rawEdge{u, v})
		labels[u] = struct{}{}
		labels[v] = struct{}{}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	orig := make([]int64, 0, len(labels))
	for l := range labels {
		orig = append(orig, l)
	}
	sort.Slice(orig, func(i, j int) bool { return orig[i] < orig[j] })
	id := make(map[int64]int, len(orig))
	for i, l := range orig {
		id[l] = i
	}
	var b Builder
	b.Grow(len(raw))
	for _, e := range raw {
		b.AddEdge(id[e.u], id[e.v])
	}
	g, err := b.Build(len(orig))
	if err != nil {
		return nil, err
	}
	return &ReadResult{Graph: g, OrigID: orig}, nil
}

// parseInt reads one non-negative integer field starting at or after
// offset i, returning the value and the offset just past the field.
func parseInt(line []byte, i int) (int64, int, error) {
	for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
		i++
	}
	start := i
	for i < len(line) && line[i] >= '0' && line[i] <= '9' {
		i++
	}
	if i == start {
		return 0, i, fmt.Errorf("expected integer at column %d", start+1)
	}
	v, err := strconv.ParseInt(string(line[start:i]), 10, 64)
	if err != nil {
		return 0, i, err
	}
	return v, i, nil
}

// ReadEdgeListFile parses the edge list stored at path.
func ReadEdgeListFile(path string) (*ReadResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// WriteEdgeList writes g as "u v" lines (u < v), suitable for re-reading
// with ReadEdgeList.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if int32(v) < u {
				if _, err := fmt.Fprintf(bw, "%d %d\n", v, u); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// WriteEdgeListFile writes g to path, creating or truncating it.
func WriteEdgeListFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
