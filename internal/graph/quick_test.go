package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// quickGraph builds a random graph from a seed, shared by the property
// tests below.
func quickGraph(seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(60)
	p := rng.Float64() * 0.4
	var b Builder
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	g, err := b.Build(n)
	if err != nil {
		panic(err)
	}
	return g
}

// Coreness is sandwiched between 0 and degree, the degeneracy equals the
// max coreness, and every vertex of the k-core has at least k neighbours
// inside the k-core — the defining property Theorem 3.5 relies on.
func TestQuickCoreInvariants(t *testing.T) {
	f := func(seed int64) bool {
		g := quickGraph(seed)
		cd := Cores(g)
		maxCore := 0
		for v := 0; v < g.N(); v++ {
			c := int(cd.Coreness[v])
			if c < 0 || c > g.Degree(v) {
				return false
			}
			if c > maxCore {
				maxCore = c
			}
		}
		if maxCore != cd.Degeneracy {
			return false
		}
		k := cd.Degeneracy
		sub, orig := KCore(g, k)
		for v := 0; v < sub.N(); v++ {
			if sub.Degree(v) < k {
				return false
			}
			_ = orig[v]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The degeneracy ordering property: each vertex has at most D neighbours
// later in η. This is what bounds |C| ≤ D in the paper's complexity
// analysis (Lemma 5.9).
func TestQuickDegeneracyOrderBound(t *testing.T) {
	f := func(seed int64) bool {
		g := quickGraph(seed)
		cd := Cores(g)
		for v := 0; v < g.N(); v++ {
			later := 0
			for _, u := range g.Neighbors(v) {
				if cd.Pos[u] > cd.Pos[v] {
					later++
				}
			}
			if later > cd.Degeneracy {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// All four text formats round-trip arbitrary graphs (edge lists lose
// isolated vertices, so compare the non-isolated structure there).
func TestQuickFormatRoundTrips(t *testing.T) {
	f := func(seed int64) bool {
		g := quickGraph(seed)
		var buf bytes.Buffer

		buf.Reset()
		if err := WriteDIMACS(&buf, g); err != nil {
			return false
		}
		if got, err := ReadDIMACS(&buf); err != nil || !graphsEqual(g, got) {
			return false
		}

		buf.Reset()
		if err := WriteMETIS(&buf, g); err != nil {
			return false
		}
		if got, err := ReadMETIS(&buf); err != nil || !graphsEqual(g, got) {
			return false
		}

		buf.Reset()
		if err := WriteMatrixMarket(&buf, g); err != nil {
			return false
		}
		if got, err := ReadMatrixMarket(&buf); err != nil || !graphsEqual(g, got) {
			return false
		}

		buf.Reset()
		if err := WriteBinary(&buf, g); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		return err == nil && graphsEqual(g, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Triangle counts computed by the forward algorithm equal the brute-force
// count, and the handshake identity holds: sum of per-vertex counts is
// 3 * total.
func TestQuickTriangleIdentity(t *testing.T) {
	f := func(seed int64) bool {
		g := quickGraph(seed % 1000) // keep n small for the cubic check
		counts := TriangleCounts(g)
		var sum int64
		for _, c := range counts {
			sum += c
		}
		total := Triangles(g)
		if sum != 3*total {
			return false
		}
		return total == naiveTriangles(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// BFS distances satisfy the triangle inequality across an edge: adjacent
// vertices' distances from any source differ by at most 1.
func TestQuickBFSLipschitz(t *testing.T) {
	f := func(seed int64) bool {
		g := quickGraph(seed)
		if g.N() == 0 {
			return true
		}
		src := int(uint64(seed) % uint64(g.N()))
		dist := BFSDistances(g, src)
		for v := 0; v < g.N(); v++ {
			for _, u := range g.Neighbors(v) {
				du, dv := dist[u], dist[v]
				if (du < 0) != (dv < 0) {
					return false // same component by definition of BFS
				}
				if du >= 0 && (du-dv > 1 || dv-du > 1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
