package graph

import (
	"math/rand"
	"testing"
)

func randomTestGraph(t *testing.T, n int, p float64, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var b Builder
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	g, err := b.Build(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPreparedMatchesLegacyPrologue pins Prepare to the composition it
// replaced (KCore + DegeneracyOrderedCopy): same working graph, same
// id mapping — the property that keeps checkpoint seed ids stable across
// the refactor.
func TestPreparedMatchesLegacyPrologue(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := randomTestGraph(t, 80, 0.12, seed)
		for _, minCore := range []int{0, 2, 4} {
			p := Prepare(g, minCore)

			core, coreID := KCore(g, minCore)
			relab, relID := DegeneracyOrderedCopy(core)
			if p.N() != relab.N() {
				t.Fatalf("seed %d minCore %d: Prepared has %d vertices, legacy %d", seed, minCore, p.N(), relab.N())
			}
			for v := 0; v < relab.N(); v++ {
				if want := coreID[relID[v]]; p.ToInput(v) != want {
					t.Fatalf("seed %d minCore %d: ToInput(%d)=%d, legacy %d", seed, minCore, v, p.ToInput(v), want)
				}
				a, b := p.G().Neighbors(v), relab.Neighbors(v)
				if len(a) != len(b) {
					t.Fatalf("seed %d minCore %d: vertex %d degree %d, legacy %d", seed, minCore, v, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("seed %d minCore %d: vertex %d adjacency differs", seed, minCore, v)
					}
				}
			}
		}
	}
}

// TestPreparedLaterNeighbors verifies the precomputed later/earlier split
// against the definition (sorted adjacency around the vertex's own id).
func TestPreparedLaterNeighbors(t *testing.T) {
	g := randomTestGraph(t, 60, 0.2, 9)
	p := Prepare(g, 2)
	for v := 0; v < p.N(); v++ {
		later, earlier := p.LaterNeighbors(v), p.EarlierNeighbors(v)
		if len(later)+len(earlier) != len(p.G().Neighbors(v)) {
			t.Fatalf("vertex %d: split loses neighbours", v)
		}
		for _, u := range earlier {
			if u >= int32(v) {
				t.Fatalf("vertex %d: earlier neighbour %d not earlier", v, u)
			}
		}
		for _, u := range later {
			if u <= int32(v) {
				t.Fatalf("vertex %d: later neighbour %d not later", v, u)
			}
		}
	}
}

// TestPreparedCoreness checks the stored coreness against a direct core
// decomposition of the working graph.
func TestPreparedCoreness(t *testing.T) {
	g := randomTestGraph(t, 70, 0.15, 4)
	p := Prepare(g, 2)
	cd := Cores(p.G())
	for v := 0; v < p.N(); v++ {
		if p.Coreness(v) != int(cd.Coreness[v]) {
			t.Fatalf("vertex %d: Coreness=%d, direct decomposition %d", v, p.Coreness(v), cd.Coreness[v])
		}
	}
}

// TestCountCommon pins the merge intersection against a map oracle.
func TestCountCommon(t *testing.T) {
	cases := []struct {
		a, b []int32
		want int
	}{
		{nil, nil, 0},
		{[]int32{1, 2, 3}, nil, 0},
		{[]int32{1, 2, 3}, []int32{3, 4, 5}, 1},
		{[]int32{1, 2, 3, 9}, []int32{0, 2, 3, 9, 11}, 3},
		{[]int32{5}, []int32{5}, 1},
	}
	for _, tc := range cases {
		if got := CountCommon(tc.a, tc.b); got != tc.want {
			t.Errorf("CountCommon(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
		dst := IntersectTo(nil, tc.a, tc.b)
		if len(dst) != tc.want {
			t.Errorf("IntersectTo(%v, %v) = %v, want %d members", tc.a, tc.b, dst, tc.want)
		}
	}
}

// TestDigestMemoized pins the compute-once contract: repeated digests of
// one graph return identical values (including under concurrency), and
// distinct graphs still digest differently.
func TestDigestMemoized(t *testing.T) {
	g := randomTestGraph(t, 40, 0.2, 1)
	first := Digest(g)
	done := make(chan [32]byte, 8)
	for i := 0; i < 8; i++ {
		go func() { done <- Digest(g) }()
	}
	for i := 0; i < 8; i++ {
		if d := <-done; d != first {
			t.Fatal("concurrent Digest calls disagree")
		}
	}
	other := randomTestGraph(t, 40, 0.2, 2)
	if Digest(other) == first {
		t.Fatal("distinct graphs share a digest")
	}
}
