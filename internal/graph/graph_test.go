package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustBuild(t *testing.T, n int, edges [][2]int) *Graph {
	t.Helper()
	var b Builder
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build(n)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuilderNormalizes(t *testing.T) {
	// Duplicates, reversed duplicates and self-loops must all collapse.
	g := mustBuild(t, 4, [][2]int{{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}, {3, 1}})
	if g.N() != 4 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(1, 2) || !g.HasEdge(1, 3) {
		t.Fatal("missing expected edges")
	}
	if g.HasEdge(2, 2) || g.HasEdge(0, 2) {
		t.Fatal("unexpected edge present")
	}
	if g.Degree(1) != 3 {
		t.Fatalf("Degree(1) = %d", g.Degree(1))
	}
	// Adjacency must be sorted.
	nb := g.Neighbors(1)
	for i := 1; i < len(nb); i++ {
		if nb[i-1] >= nb[i] {
			t.Fatalf("Neighbors(1) not sorted: %v", nb)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	var b Builder
	b.AddEdge(0, 5)
	if _, err := b.Build(3); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := mustBuild(t, 0, nil)
	if g.N() != 0 || g.M() != 0 || g.MaxDegree() != 0 {
		t.Fatal("empty graph not empty")
	}
	cd := Cores(g)
	if cd.Degeneracy != 0 || len(cd.Order) != 0 {
		t.Fatal("empty graph core decomposition wrong")
	}
}

func TestInferredVertexCount(t *testing.T) {
	var b Builder
	b.AddEdge(2, 7)
	g, err := b.Build(-1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 8 {
		t.Fatalf("inferred N = %d, want 8", g.N())
	}
}

func TestCoresOnKnownGraphs(t *testing.T) {
	// A triangle with a pendant: coreness 2,2,2,1; degeneracy 2.
	g := mustBuild(t, 4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	cd := Cores(g)
	if cd.Degeneracy != 2 {
		t.Fatalf("degeneracy = %d, want 2", cd.Degeneracy)
	}
	wantCore := []int32{2, 2, 2, 1}
	for v, w := range wantCore {
		if cd.Coreness[v] != w {
			t.Fatalf("coreness[%d] = %d, want %d", v, cd.Coreness[v], w)
		}
	}
	// The pendant must be peeled first.
	if cd.Order[0] != 3 {
		t.Fatalf("order[0] = %d, want 3", cd.Order[0])
	}
	// Pos must invert Order.
	for i, v := range cd.Order {
		if cd.Pos[v] != int32(i) {
			t.Fatal("Pos does not invert Order")
		}
	}

	// Complete graph K5: degeneracy 4.
	var b Builder
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j)
		}
	}
	k5, _ := b.Build(5)
	if d := Degeneracy(k5); d != 4 {
		t.Fatalf("K5 degeneracy = %d, want 4", d)
	}
}

// coreInvariant checks that every vertex of the k-core has >= k neighbours
// inside the k-core.
func TestKCoreInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 30 + rng.Intn(50)
		var b Builder
		for i := 0; i < 3*n; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g, _ := b.Build(n)
		for k := 1; k <= 5; k++ {
			sub, orig := KCore(g, k)
			for v := 0; v < sub.N(); v++ {
				if sub.Degree(v) < k {
					t.Fatalf("k=%d: vertex %d (orig %d) has degree %d in core",
						k, v, orig[v], sub.Degree(v))
				}
			}
			// Maximality: no removed vertex set could be added back; verified
			// indirectly by comparing against the coreness array.
			cd := Cores(g)
			cnt := 0
			for v := 0; v < g.N(); v++ {
				if int(cd.Coreness[v]) >= k {
					cnt++
				}
			}
			if cnt != sub.N() {
				t.Fatalf("k=%d: core has %d vertices, coreness says %d", k, sub.N(), cnt)
			}
		}
	}
}

func TestDegeneracyOrderedCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 60
	var b Builder
	for i := 0; i < 4*n; i++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	g, _ := b.Build(n)
	rg, orig := DegeneracyOrderedCopy(g)
	if rg.N() != g.N() || rg.M() != g.M() {
		t.Fatalf("relabel changed size: %d/%d vs %d/%d", rg.N(), rg.M(), g.N(), g.M())
	}
	// Edges must map back exactly.
	for v := 0; v < rg.N(); v++ {
		for _, u := range rg.Neighbors(v) {
			if !g.HasEdge(int(orig[v]), int(orig[u])) {
				t.Fatalf("edge (%d,%d) not present in original", orig[v], orig[u])
			}
		}
	}
	// Degeneracy property: every vertex has at most D later neighbours.
	d := Degeneracy(g)
	for v := 0; v < rg.N(); v++ {
		later := 0
		for _, u := range rg.Neighbors(v) {
			if u > int32(v) {
				later++
			}
		}
		if later > d {
			t.Fatalf("vertex %d has %d later neighbours > degeneracy %d", v, later, d)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := mustBuild(t, 6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {1, 4}})
	sub, orig := g.InducedSubgraph([]int{1, 2, 4})
	if sub.N() != 3 {
		t.Fatalf("sub N = %d", sub.N())
	}
	// Edges among {1,2,4}: (1,2) and (1,4).
	if sub.M() != 2 {
		t.Fatalf("sub M = %d, want 2", sub.M())
	}
	find := func(o int) int {
		for i, v := range orig {
			if int(v) == o {
				return i
			}
		}
		t.Fatalf("orig id %d missing", o)
		return -1
	}
	if !sub.HasEdge(find(1), find(2)) || !sub.HasEdge(find(1), find(4)) {
		t.Fatal("expected edges missing in induced subgraph")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := mustBuild(t, 5, [][2]int{{0, 1}, {1, 2}, {3, 4}, {0, 4}})
	var sb strings.Builder
	if err := WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	rr, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if rr.Graph.M() != g.M() {
		t.Fatalf("round trip M = %d, want %d", rr.Graph.M(), g.M())
	}
}

func TestReadEdgeListFormats(t *testing.T) {
	in := `# comment line
% another comment

10 20
20 30  999
   30   10
`
	rr, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if rr.Graph.N() != 3 || rr.Graph.M() != 3 {
		t.Fatalf("parsed N=%d M=%d, want 3/3", rr.Graph.N(), rr.Graph.M())
	}
	// Labels must be preserved in sorted order.
	if rr.OrigID[0] != 10 || rr.OrigID[1] != 20 || rr.OrigID[2] != 30 {
		t.Fatalf("OrigID = %v", rr.OrigID)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, bad := range []string{"1\n", "a b\n", "1 b\n"} {
		if _, err := ReadEdgeList(strings.NewReader(bad)); err == nil {
			t.Fatalf("input %q accepted", bad)
		}
	}
}

func TestStats(t *testing.T) {
	g := mustBuild(t, 4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	s := ComputeStats(g)
	if s.N != 4 || s.M != 4 || s.MaxDegree != 3 || s.Degeneracy != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.AverageDegree() != 2 {
		t.Fatalf("avg degree = %f", s.AverageDegree())
	}
	if !strings.Contains(s.String(), "n=4") {
		t.Fatalf("String() = %q", s.String())
	}
}

// TestQuickDegeneracyBounds property-checks D against its textbook bounds:
// D <= Δ and the average degree is at most 2D.
func TestQuickDegeneracyBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(80)
		var b Builder
		for i := 0; i < n*3; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g, err := b.Build(n)
		if err != nil {
			return false
		}
		d := Degeneracy(g)
		if d > g.MaxDegree() {
			return false
		}
		if g.N() > 0 && float64(2*g.M())/float64(g.N()) > float64(2*d) {
			return false
		}
		// The degeneracy ordering certificate: <= d later neighbours each.
		cd := Cores(g)
		for i, v := range cd.Order {
			later := 0
			for _, u := range g.Neighbors(int(v)) {
				if cd.Pos[u] > int32(i) {
					later++
				}
			}
			if later > d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
