package graph

// Merge-based set algebra over sorted adjacency rows. The CSR invariant
// (every Neighbors row ascending, duplicate-free) makes common-neighbour
// counting a linear merge instead of a hash probe per element — the
// memory-layout-conscious formulation the seed pipeline and the CTCP
// reduction share.

// CountCommon returns |a ∩ b| for two ascending, duplicate-free int32
// slices (typically two adjacency rows). It never allocates. Nil and empty
// slices are valid and count as empty sets — the same contract the
// bit-parallel kernels (bitset.AndCount) honour for word slices, pinned by
// the differential tests in sorted_test.go.
func CountCommon(a, b []int32) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// IntersectTo appends a ∩ b (both ascending, duplicate-free) to dst and
// returns the extended slice. Nil and empty inputs are valid empty sets.
//
// In-place intersection via dst = a[:0] or dst = b[:0] is supported: the
// k-th common element is appended only after at least k elements of each
// input have been consumed, so every write lands on an index the merge has
// already read past (and cap(dst) suffices, so append never reallocates
// away from the shared backing). Any other overlap between dst's writable
// region and either input — a dst with nonzero length sharing a backing
// array, or an offset sub-slice — is undefined: appends would clobber
// elements the merge has yet to read.
func IntersectTo(dst []int32, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}
