package graph

// Merge-based set algebra over sorted adjacency rows. The CSR invariant
// (every Neighbors row ascending, duplicate-free) makes common-neighbour
// counting a linear merge instead of a hash probe per element — the
// memory-layout-conscious formulation the seed pipeline and the CTCP
// reduction share.

// CountCommon returns |a ∩ b| for two ascending, duplicate-free int32
// slices (typically two adjacency rows). It never allocates.
func CountCommon(a, b []int32) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// IntersectTo appends a ∩ b (both ascending, duplicate-free) to dst and
// returns the extended slice. dst may alias neither input.
func IntersectTo(dst []int32, a, b []int32) []int32 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}
