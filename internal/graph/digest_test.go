package graph

import (
	"math/rand"
	"testing"
)

// The digest must depend only on the edge set: shuffled, duplicated edge
// insertions build the same graph and the same digest.
func TestDigestEdgeOrderInvariant(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}, {4, 1}}
	var b1 Builder
	for _, e := range edges {
		b1.AddEdge(e[0], e[1])
	}
	g1, err := b1.Build(5)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(1))
	var b2 Builder
	perm := rng.Perm(len(edges))
	for _, i := range perm {
		b2.AddEdge(edges[i][1], edges[i][0]) // reversed endpoints
	}
	b2.AddEdge(0, 1) // duplicate is deduplicated by Build
	g2, err := b2.Build(5)
	if err != nil {
		t.Fatal(err)
	}

	if Digest(g1) != Digest(g2) {
		t.Error("digest differs across edge insertion orders")
	}
	if DigestHex(g1) != DigestHex(g2) {
		t.Error("hex digest differs across edge insertion orders")
	}
	if len(DigestHex(g1)) != 64 {
		t.Errorf("hex digest length %d, want 64", len(DigestHex(g1)))
	}
}

// Different graphs — one edge added, one vertex added, or an isolated
// vertex shifted — must digest differently.
func TestDigestDistinguishesGraphs(t *testing.T) {
	base := func() *Builder {
		var b Builder
		b.AddEdge(0, 1)
		b.AddEdge(1, 2)
		return &b
	}
	g, _ := base().Build(3)

	b2 := base()
	b2.AddEdge(0, 2)
	g2, _ := b2.Build(3)
	if Digest(g) == Digest(g2) {
		t.Error("adding an edge did not change the digest")
	}

	g3, _ := base().Build(4) // extra isolated vertex
	if Digest(g) == Digest(g3) {
		t.Error("adding an isolated vertex did not change the digest")
	}

	empty1, _ := (&Builder{}).Build(0)
	empty2, _ := (&Builder{}).Build(2)
	if Digest(empty1) == Digest(empty2) {
		t.Error("empty graphs of different order digest equal")
	}
}
