package graph

import (
	"math/rand"
	"testing"
)

func buildGraph(t *testing.T, n int, edges [][2]int) *Graph {
	t.Helper()
	var b Builder
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build(n)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestTriangleCountsTriangle(t *testing.T) {
	g := buildGraph(t, 3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	counts := TriangleCounts(g)
	for v, c := range counts {
		if c != 1 {
			t.Errorf("vertex %d: got %d triangles, want 1", v, c)
		}
	}
	if total := Triangles(g); total != 1 {
		t.Errorf("Triangles = %d, want 1", total)
	}
}

func TestTriangleCountsPath(t *testing.T) {
	g := buildGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if total := Triangles(g); total != 0 {
		t.Errorf("path has %d triangles, want 0", total)
	}
}

func TestTriangleCountsK4(t *testing.T) {
	g := buildGraph(t, 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if total := Triangles(g); total != 4 {
		t.Errorf("K4 has %d triangles, want 4", total)
	}
	for v, c := range TriangleCounts(g) {
		if c != 3 {
			t.Errorf("K4 vertex %d in %d triangles, want 3", v, c)
		}
	}
}

// naiveTriangles counts triangles by brute force over vertex triples.
func naiveTriangles(g *Graph) int64 {
	var total int64
	n := g.N()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !g.HasEdge(a, b) {
				continue
			}
			for c := b + 1; c < n; c++ {
				if g.HasEdge(a, c) && g.HasEdge(b, c) {
					total++
				}
			}
		}
	}
	return total
}

func TestTrianglesMatchesNaiveOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(25)
		var b Builder
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.3 {
					b.AddEdge(u, v)
				}
			}
		}
		g, err := b.Build(n)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := Triangles(g), naiveTriangles(g); got != want {
			t.Fatalf("trial %d (n=%d): Triangles=%d, naive=%d", trial, n, got, want)
		}
	}
}

func TestCommonNeighborCount(t *testing.T) {
	g := buildGraph(t, 5, [][2]int{{0, 2}, {0, 3}, {1, 2}, {1, 3}, {1, 4}})
	if got := CommonNeighborCount(g, 0, 1); got != 2 {
		t.Errorf("CommonNeighborCount(0,1) = %d, want 2", got)
	}
	if got := CommonNeighborCount(g, 0, 4); got != 0 {
		t.Errorf("CommonNeighborCount(0,4) = %d, want 0", got)
	}
	cn := CommonNeighbors(g, 0, 1, nil)
	if len(cn) != 2 || cn[0] != 2 || cn[1] != 3 {
		t.Errorf("CommonNeighbors(0,1) = %v, want [2 3]", cn)
	}
}

func TestClusteringCoefficients(t *testing.T) {
	// Triangle plus a pendant on vertex 0: cc(0) = 1/3, cc(1)=cc(2)=1,
	// cc(3)=0.
	g := buildGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {0, 3}})
	cc := LocalClustering(g)
	want := []float64{1.0 / 3, 1, 1, 0}
	for v := range want {
		if diff := cc[v] - want[v]; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("cc[%d] = %v, want %v", v, cc[v], want[v])
		}
	}
	if avg := AverageClustering(g); avg < 0.58 || avg > 0.59 {
		t.Errorf("AverageClustering = %v, want ~0.5833", avg)
	}
	// Transitivity: 3 triangles' worth of closed wedges / total wedges.
	// Wedges: deg 3,2,2,1 -> 3+1+1+0 = 5; closed = 3*1 = 3.
	if tr := Transitivity(g); tr < 0.599 || tr > 0.601 {
		t.Errorf("Transitivity = %v, want 0.6", tr)
	}
}

func TestClusteringEmptyAndEdgeless(t *testing.T) {
	var b Builder
	g, err := b.Build(0)
	if err != nil {
		t.Fatal(err)
	}
	if Transitivity(g) != 0 || AverageClustering(g) != 0 || Triangles(g) != 0 {
		t.Error("empty graph should have zero clustering stats")
	}
	g2, err := new(Builder).Build(5)
	if err != nil {
		t.Fatal(err)
	}
	if Transitivity(g2) != 0 || AverageClustering(g2) != 0 {
		t.Error("edgeless graph should have zero clustering stats")
	}
}
