package graph

import "sort"

// CSR is the read-only access surface of a compressed-sparse-row graph:
// everything the enumeration prologue (core decomposition, CTCP reduction,
// degeneracy relabelling) needs from a graph source. *Graph implements it
// with in-memory slices; the on-disk store's mmap-backed reader implements
// it by decoding delta+varint adjacency blocks on demand, which is what
// lets kplex.Prepare — and therefore the whole seed pipeline — run
// unmodified over paged data.
//
// Contracts (identical to *Graph's):
//   - vertices are 0..N()-1;
//   - Neighbors(v) is sorted ascending, has no self-loops and no
//     duplicates, and must not be modified by the caller;
//   - the slice returned by Neighbors stays valid for as long as the
//     caller holds it (a paging implementation may evict its decoded
//     block, but eviction only drops the source's reference);
//   - M() is the undirected edge count, so sum of Degree = 2*M().
type CSR interface {
	N() int
	M() int
	Degree(v int) int
	Neighbors(v int) []int32
}

// StoredDigester is implemented by graph sources that carry a precomputed
// content digest (the on-disk store format keeps it in the file header).
// DigestOf consults it instead of rehashing the whole adjacency, which is
// what keeps catalog-backed graphs O(1) to open.
type StoredDigester interface {
	StoredDigest() [32]byte
}

// MaxDegreeOf returns Δ for any CSR, using a source-provided constant-time
// answer when one exists (*Graph scans; the store reader answers from its
// header).
func MaxDegreeOf(g CSR) int {
	if mg, ok := g.(interface{ MaxDegree() int }); ok {
		return mg.MaxDegree()
	}
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// HasEdgeIn reports whether (u, v) is an edge of any CSR source, by
// binary search on u's sorted adjacency row.
func HasEdgeIn(g CSR, u, v int) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
	return i < len(nb) && nb[i] == int32(v)
}

// Materialize copies any CSR into an in-memory *Graph. The input's
// adjacency contracts (sorted, deduplicated, loop-free) are trusted; the
// copy is built directly without renormalizing.
func Materialize(g CSR) *Graph {
	if gg, ok := g.(*Graph); ok {
		return gg
	}
	n := g.N()
	offsets := make([]int32, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + int32(g.Degree(v))
	}
	adj := make([]int32, offsets[n])
	for v := 0; v < n; v++ {
		copy(adj[offsets[v]:offsets[v+1]], g.Neighbors(v))
	}
	return &Graph{offsets: offsets, adj: adj}
}
