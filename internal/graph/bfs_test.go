package graph

import (
	"math/rand"
	"testing"
)

func TestBFSDistancesPath(t *testing.T) {
	g := buildGraph(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	dist := BFSDistances(g, 0)
	want := []int32{0, 1, 2, 3, -1}
	for v := range want {
		if dist[v] != want[v] {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], want[v])
		}
	}
}

func TestBFSDistancesInvalidSource(t *testing.T) {
	g := buildGraph(t, 3, [][2]int{{0, 1}})
	for _, src := range []int{-1, 3} {
		dist := BFSDistances(g, src)
		for v, d := range dist {
			if d != -1 {
				t.Errorf("src=%d: dist[%d] = %d, want -1", src, v, d)
			}
		}
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	// Path of 5: diameter 4, ecc(middle)=2.
	g := buildGraph(t, 5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	if e := Eccentricity(g, 2); e != 2 {
		t.Errorf("Eccentricity(2) = %d, want 2", e)
	}
	if d := ApproxDiameter(g, 2); d != 4 {
		t.Errorf("ApproxDiameter = %d, want 4 (exact on trees)", d)
	}
}

func TestApproxDiameterLowerBoundsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 8 + rng.Intn(20)
		var b Builder
		// Random connected-ish graph: a path backbone plus random chords.
		for v := 1; v < n; v++ {
			b.AddEdge(v-1, v)
		}
		for e := 0; e < n/2; e++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g, err := b.Build(n)
		if err != nil {
			t.Fatal(err)
		}
		exact := 0
		for v := 0; v < n; v++ {
			if e := Eccentricity(g, v); e > exact {
				exact = e
			}
		}
		approx := ApproxDiameter(g, rng.Intn(n))
		if approx > exact {
			t.Fatalf("trial %d: approx diameter %d exceeds exact %d", trial, approx, exact)
		}
		if approx < exact/2 {
			t.Fatalf("trial %d: double sweep %d below half of exact %d", trial, approx, exact)
		}
	}
}

func TestWithinHops(t *testing.T) {
	// Star with a 2-hop rim: 0-1, 0-2, 1-3, 2-4.
	g := buildGraph(t, 5, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 4}})
	got := WithinHops(g, 0, 1)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("WithinHops(0,1) = %v, want [1 2]", got)
	}
	got = WithinHops(g, 0, 2)
	if len(got) != 4 {
		t.Errorf("WithinHops(0,2) = %v, want 4 vertices", got)
	}
	if WithinHops(g, 0, 0) != nil {
		t.Error("WithinHops with h=0 should be nil")
	}
	if WithinHops(g, -1, 2) != nil {
		t.Error("WithinHops with bad src should be nil")
	}
}

func TestWithinHopsMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 40
	var b Builder
	for e := 0; e < 120; e++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n))
	}
	g, err := b.Build(n)
	if err != nil {
		t.Fatal(err)
	}
	dist := BFSDistances(g, 5)
	for _, h := range []int{1, 2, 3} {
		want := 0
		for _, d := range dist {
			if d > 0 && int(d) <= h {
				want++
			}
		}
		if got := len(WithinHops(g, 5, h)); got != want {
			t.Errorf("h=%d: WithinHops has %d vertices, BFS says %d", h, got, want)
		}
	}
}
