package graph

// This file implements triangle counting and clustering statistics. The
// k-plex pruning rules of the paper (Corollary 5.2, Theorems 5.13-5.15) are
// all thresholds on common-neighbour counts, i.e. on the local triangle
// structure around a vertex pair, so the routines here double as a
// diagnostic substrate: datasets whose common-neighbour mass is low are
// exactly those where the second-order rules prune hard.

// CommonNeighborCount returns |N(u) ∩ N(v)| by merging the two sorted
// adjacency lists.
func CommonNeighborCount(g *Graph, u, v int) int {
	a, b := g.Neighbors(u), g.Neighbors(v)
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// CommonNeighbors appends N(u) ∩ N(v) to dst and returns it.
func CommonNeighbors(g *Graph, u, v int, dst []int32) []int32 {
	a, b := g.Neighbors(u), g.Neighbors(v)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// TriangleCounts returns the number of triangles through each vertex. It
// uses the forward (degree-ordered) algorithm: every triangle is discovered
// exactly once at its highest-rank vertex and credited to all three corners.
// Runs in O(m^{3/2}) time and O(n + m) space.
func TriangleCounts(g *Graph) []int64 {
	n := g.N()
	counts := make([]int64, n)
	if n == 0 {
		return counts
	}

	// rank orders vertices by (degree, id); "forward" neighbours of v are
	// those with higher rank.
	rank := degreeRank(g)
	forward := make([][]int32, n)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			if rank[u] > rank[v] {
				forward[v] = append(forward[v], u)
			}
		}
	}
	// mark is a per-source scratch marking forward[v] members.
	mark := make([]bool, n)
	for v := 0; v < n; v++ {
		for _, u := range forward[v] {
			mark[u] = true
		}
		for _, u := range forward[v] {
			for _, w := range forward[int(u)] {
				if mark[w] {
					counts[v]++
					counts[u]++
					counts[w]++
				}
			}
		}
		for _, u := range forward[v] {
			mark[u] = false
		}
	}
	return counts
}

// Triangles returns the total number of triangles in g.
func Triangles(g *Graph) int64 {
	var total int64
	for _, c := range TriangleCounts(g) {
		total += c
	}
	return total / 3
}

// LocalClustering returns the local clustering coefficient of every vertex:
// triangles(v) / C(deg(v), 2), defined as 0 for degree < 2.
func LocalClustering(g *Graph) []float64 {
	tri := TriangleCounts(g)
	out := make([]float64, g.N())
	for v := range out {
		d := int64(g.Degree(v))
		if d >= 2 {
			out[v] = float64(2*tri[v]) / float64(d*(d-1))
		}
	}
	return out
}

// AverageClustering returns the mean local clustering coefficient
// (Watts-Strogatz definition), 0 for the empty graph.
func AverageClustering(g *Graph) float64 {
	cc := LocalClustering(g)
	if len(cc) == 0 {
		return 0
	}
	var sum float64
	for _, c := range cc {
		sum += c
	}
	return sum / float64(len(cc))
}

// Transitivity returns the global clustering coefficient
// 3*triangles / wedges, 0 when the graph has no wedge.
func Transitivity(g *Graph) float64 {
	var wedges int64
	for v := 0; v < g.N(); v++ {
		d := int64(g.Degree(v))
		wedges += d * (d - 1) / 2
	}
	if wedges == 0 {
		return 0
	}
	return float64(3*Triangles(g)) / float64(wedges)
}

// degreeRank returns a permutation rank where rank[u] < rank[v] iff
// (deg(u), u) < (deg(v), v).
func degreeRank(g *Graph) []int32 {
	n := g.N()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	// Counting sort by degree keeps this O(n + m).
	buckets := make([][]int32, g.MaxDegree()+1)
	for v := 0; v < n; v++ {
		d := g.Degree(v)
		buckets[d] = append(buckets[d], int32(v))
	}
	rank := make([]int32, n)
	r := int32(0)
	for _, b := range buckets {
		for _, v := range b {
			rank[v] = r
			r++
		}
	}
	return rank
}
