package graph

import (
	"math"
	"testing"
)

func TestDegreeHistogram(t *testing.T) {
	g := buildGraph(t, 5, [][2]int{{0, 1}, {1, 2}, {1, 3}})
	hist := DegreeHistogram(g)
	// Degrees: 1, 3, 1, 1, 0 -> hist = [1, 3, 0, 1].
	want := []int{1, 3, 0, 1}
	if len(hist) != len(want) {
		t.Fatalf("hist = %v, want %v", hist, want)
	}
	for d := range want {
		if hist[d] != want[d] {
			t.Errorf("hist[%d] = %d, want %d", d, hist[d], want[d])
		}
	}
	sum := 0
	for _, c := range hist {
		sum += c
	}
	if sum != g.N() {
		t.Errorf("histogram sums to %d, want n=%d", sum, g.N())
	}
	if DegreeHistogram(edgeless(t, 0)) != nil {
		t.Error("empty graph histogram should be nil")
	}
}

func edgeless(t *testing.T, n int) *Graph {
	t.Helper()
	g, err := new(Builder).Build(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestShellSizes(t *testing.T) {
	// Triangle (coreness 2 each) plus pendant (coreness 1) plus isolate
	// (coreness 0).
	g := buildGraph(t, 5, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	sizes := ShellSizes(g)
	want := []int{1, 1, 3}
	if len(sizes) != len(want) {
		t.Fatalf("ShellSizes = %v, want %v", sizes, want)
	}
	for c := range want {
		if sizes[c] != want[c] {
			t.Errorf("shell %d has %d vertices, want %d", c, sizes[c], want[c])
		}
	}
}

func TestDegreeAssortativityRegular(t *testing.T) {
	// A cycle is regular: zero degree variance, so r must be 0 by our
	// convention (the estimator is 0/0).
	var b Builder
	for v := 0; v < 6; v++ {
		b.AddEdge(v, (v+1)%6)
	}
	g, err := b.Build(6)
	if err != nil {
		t.Fatal(err)
	}
	if r := DegreeAssortativity(g); r != 0 {
		t.Errorf("cycle assortativity = %v, want 0", r)
	}
}

func TestDegreeAssortativityStar(t *testing.T) {
	// A star is maximally disassortative: r = -1.
	var b Builder
	for leaf := 1; leaf <= 5; leaf++ {
		b.AddEdge(0, leaf)
	}
	g, err := b.Build(6)
	if err != nil {
		t.Fatal(err)
	}
	if r := DegreeAssortativity(g); math.Abs(r+1) > 1e-9 {
		t.Errorf("star assortativity = %v, want -1", r)
	}
}

func TestDegreeAssortativityBounds(t *testing.T) {
	g := randomGraph(t, 60, 0.1, 9)
	r := DegreeAssortativity(g)
	if r < -1-1e-9 || r > 1+1e-9 {
		t.Errorf("assortativity %v outside [-1, 1]", r)
	}
	if DegreeAssortativity(edgeless(t, 4)) != 0 {
		t.Error("edgeless graph assortativity should be 0")
	}
}

func TestComputeExtendedStats(t *testing.T) {
	g := buildGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	s := ComputeExtendedStats(g)
	if s.N != 4 || s.M != 3 {
		t.Errorf("stats n=%d m=%d, want 4, 3", s.N, s.M)
	}
	if s.Triangles != 1 {
		t.Errorf("Triangles = %d, want 1", s.Triangles)
	}
	if s.Components != 2 {
		t.Errorf("Components = %d, want 2", s.Components)
	}
	if s.ApproxDiam != 1 {
		t.Errorf("ApproxDiam = %d, want 1", s.ApproxDiam)
	}
	if s.AvgDegree != 1.5 {
		t.Errorf("AvgDegree = %v, want 1.5", s.AvgDegree)
	}
}
