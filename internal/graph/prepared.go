package graph

import "sort"

// Prepared is an enumeration-ready view of a graph: the minCore-core
// restricted to non-isolated shells, relabelled so vertex i is the i-th
// vertex of the degeneracy ordering η, with guaranteed-sorted CSR
// adjacency, per-vertex later-neighbour offsets, and per-vertex coreness.
// It is immutable after Prepare, so one handle can serve any number of
// concurrent enumeration runs — the serving layer caches handles keyed by
// the source graph's memoized digest so repeat queries skip this O(n+m)
// prologue entirely.
type Prepared struct {
	g        *Graph  // relabelled working graph
	toInput  []int32 // relabelled id -> source graph id
	laterOff []int32 // index within Neighbors(v) of the first neighbour > v
	coreness []int32 // core numbers in the relabelled space
}

// Prepare builds the enumeration view of g: restrict to the minCore-core
// (Theorem 3.5 with minCore = q-k), relabel by degeneracy order, and
// precompute the later-neighbour offsets the seed decomposition consumes.
func Prepare(g CSR, minCore int) *Prepared {
	core, coreID := KCore(g, minCore)
	cd := Cores(core)
	n := core.N()

	// Relabel along η, as DegeneracyOrderedCopy does, but keep the core
	// decomposition so coreness comes out of the same peel.
	var b Builder
	b.Grow(core.M())
	for newU := 0; newU < n; newU++ {
		oldU := cd.Order[newU]
		for _, oldV := range core.Neighbors(int(oldU)) {
			if newV := cd.Pos[oldV]; int32(newU) < newV {
				b.AddEdge(newU, int(newV))
			}
		}
	}
	relab, err := b.Build(n)
	if err != nil {
		panic("graph: prepare relabel: " + err.Error())
	}

	p := &Prepared{
		g:        relab,
		toInput:  make([]int32, n),
		laterOff: make([]int32, n),
		coreness: make([]int32, n),
	}
	for i := 0; i < n; i++ {
		old := cd.Order[i]
		p.toInput[i] = coreID[old]
		p.coreness[i] = cd.Coreness[old]
		row := relab.Neighbors(i)
		p.laterOff[i] = int32(sort.Search(len(row), func(j int) bool { return row[j] > int32(i) }))
	}
	return p
}

// G returns the relabelled working graph. Its vertex ids are the seed id
// space of an enumeration run; callers must not mutate it.
func (p *Prepared) G() *Graph { return p.g }

// N returns the number of vertices of the working graph.
func (p *Prepared) N() int { return p.g.N() }

// ToInput maps a working-graph vertex back to the source graph's id space.
func (p *Prepared) ToInput(v int) int32 { return p.toInput[v] }

// ToInputIDs returns the full relabelled-to-source id mapping. Callers must
// not mutate it.
func (p *Prepared) ToInputIDs() []int32 { return p.toInput }

// LaterNeighbors returns the neighbours of v that come after v in the
// degeneracy ordering — the suffix of the sorted adjacency row, located by
// the precomputed offset instead of a scan.
func (p *Prepared) LaterNeighbors(v int) []int32 {
	return p.g.Neighbors(v)[p.laterOff[v]:]
}

// EarlierNeighbors returns the neighbours of v that come before it in the
// degeneracy ordering.
func (p *Prepared) EarlierNeighbors(v int) []int32 {
	return p.g.Neighbors(v)[:p.laterOff[v]]
}

// Coreness returns the core number of working-graph vertex v.
func (p *Prepared) Coreness(v int) int { return int(p.coreness[v]) }
