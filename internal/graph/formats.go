package graph

// Additional on-disk formats used across the graph-mining literature the
// paper sits in: DIMACS (.clq files of the clique/k-plex benchmark suites),
// METIS (the partitioning format many graph repositories ship), and
// MatrixMarket coordinate pattern (SuiteSparse). All readers normalise into
// the same CSR Graph; writers produce files the readers round-trip.

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// maxDeclaredVertices caps header-declared vertex counts in the DIMACS and
// MatrixMarket parsers. Unlike METIS (one line per vertex) and the binary
// format (one varint per vertex), these formats let a few header bytes
// demand an O(n) CSR allocation before any edge data backs it up — a
// crafted "p edge 9e18 0" line would panic makeslice. 2^24 vertices is far
// beyond every dataset in this repo; larger graphs should use the
// edge-list or binary formats, whose memory is proportional to the input.
const maxDeclaredVertices = 1 << 24

// maxPreallocEdges caps how many header-declared edges the parsers
// pre-allocate for. Purely an optimisation bound: the builders grow on
// demand, so larger (honest) inputs still parse.
const maxPreallocEdges = 1 << 20

// ReadDIMACS parses the DIMACS clique format:
//
//	c comment
//	p edge <n> <m>
//	e <u> <v>        (1-based vertex ids)
//
// Extra fields after "e u v" are ignored; "n" node lines (weights) are
// skipped. The vertex count comes from the problem line; edges referring to
// vertices outside 1..n are an error.
func ReadDIMACS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b Builder
	n := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "c", "n":
			// comment / node weight: ignored
		case "p":
			if n >= 0 {
				return nil, fmt.Errorf("graph: dimacs line %d: duplicate problem line", lineNo)
			}
			if len(fields) < 4 {
				return nil, fmt.Errorf("graph: dimacs line %d: malformed problem line", lineNo)
			}
			// fields[1] is the format name ("edge", "col", ...); accept any.
			var err error
			n, err = strconv.Atoi(fields[2])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: dimacs line %d: bad vertex count %q", lineNo, fields[2])
			}
			if n > maxDeclaredVertices {
				return nil, fmt.Errorf("graph: dimacs line %d: vertex count %d exceeds the %d cap", lineNo, n, maxDeclaredVertices)
			}
		case "e":
			if n < 0 {
				return nil, fmt.Errorf("graph: dimacs line %d: edge before problem line", lineNo)
			}
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: dimacs line %d: malformed edge line", lineNo)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: dimacs line %d: bad edge endpoints", lineNo)
			}
			if u < 1 || u > n || v < 1 || v > n {
				return nil, fmt.Errorf("graph: dimacs line %d: endpoint out of range 1..%d", lineNo, n)
			}
			b.AddEdge(u-1, v-1)
		default:
			return nil, fmt.Errorf("graph: dimacs line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading dimacs: %w", err)
	}
	if n < 0 {
		return nil, fmt.Errorf("graph: dimacs input has no problem line")
	}
	return b.Build(n)
}

// WriteDIMACS writes g in the DIMACS clique format (1-based ids).
func WriteDIMACS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p edge %d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if int32(v) < u {
				if _, err := fmt.Fprintf(bw, "e %d %d\n", v+1, u+1); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadMETIS parses the METIS graph format: a header "n m [fmt [ncon]]"
// followed by n lines, line i listing the 1-based neighbours of vertex i.
// Only unweighted graphs (fmt absent or "0"/"00"/"000") are supported.
// Comment lines start with '%'.
func ReadMETIS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	next := func() ([]string, error) {
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "%") {
				continue
			}
			return strings.Fields(line), nil
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	header, err := next()
	if err != nil {
		return nil, fmt.Errorf("graph: metis: missing header: %w", err)
	}
	if len(header) < 2 {
		return nil, fmt.Errorf("graph: metis: malformed header %q", strings.Join(header, " "))
	}
	n, err1 := strconv.Atoi(header[0])
	m, err2 := strconv.Atoi(header[1])
	if err1 != nil || err2 != nil || n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: metis: bad header counts")
	}
	if len(header) >= 3 {
		if f := strings.Trim(header[2], "0"); f != "" {
			return nil, fmt.Errorf("graph: metis: weighted format %q not supported", header[2])
		}
	}
	var b Builder
	b.Grow(min(m, maxPreallocEdges))
	for v := 0; v < n; v++ {
		// METIS requires exactly one line per vertex, but blank adjacency
		// lines are legal for isolated vertices; the scanner above skips
		// blanks, so we read raw lines here instead.
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return nil, fmt.Errorf("graph: metis: %w", err)
			}
			return nil, fmt.Errorf("graph: metis: expected %d adjacency lines, got %d", n, v)
		}
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "%") {
			v-- // comment between adjacency lines
			continue
		}
		for _, f := range strings.Fields(line) {
			u, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("graph: metis: vertex %d: bad neighbour %q", v+1, f)
			}
			if u < 1 || u > n {
				return nil, fmt.Errorf("graph: metis: vertex %d: neighbour %d out of range 1..%d", v+1, u, n)
			}
			b.AddEdge(v, u-1)
		}
	}
	g, err := b.Build(n)
	if err != nil {
		return nil, err
	}
	if g.M() != m {
		return nil, fmt.Errorf("graph: metis: header claims %d edges, adjacency has %d", m, g.M())
	}
	return g, nil
}

// WriteMETIS writes g in the METIS format (1-based adjacency lines).
func WriteMETIS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	var line bytes.Buffer
	for v := 0; v < g.N(); v++ {
		line.Reset()
		for i, u := range g.Neighbors(v) {
			if i > 0 {
				line.WriteByte(' ')
			}
			line.WriteString(strconv.Itoa(int(u) + 1))
		}
		line.WriteByte('\n')
		if _, err := bw.Write(line.Bytes()); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses the MatrixMarket coordinate format for pattern or
// weighted symmetric/general square matrices, treating entries as undirected
// edges (weights ignored, diagonal entries dropped).
func ReadMatrixMarket(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("graph: matrixmarket: empty input")
	}
	banner := strings.Fields(strings.ToLower(sc.Text()))
	if len(banner) < 4 || banner[0] != "%%matrixmarket" || banner[1] != "matrix" || banner[2] != "coordinate" {
		return nil, fmt.Errorf("graph: matrixmarket: unsupported banner %q", sc.Text())
	}
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("graph: matrixmarket: bad size line %q", line)
		}
		break
	}
	if rows != cols {
		return nil, fmt.Errorf("graph: matrixmarket: matrix is %dx%d, need square", rows, cols)
	}
	if rows < 0 || nnz < 0 {
		return nil, fmt.Errorf("graph: matrixmarket: negative size %dx%d nnz=%d", rows, cols, nnz)
	}
	if rows > maxDeclaredVertices {
		return nil, fmt.Errorf("graph: matrixmarket: %d rows exceeds the %d cap", rows, maxDeclaredVertices)
	}
	var b Builder
	b.Grow(min(nnz, maxPreallocEdges))
	seen := 0
	for sc.Scan() && seen < nnz {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: matrixmarket: malformed entry %q", line)
		}
		u, err1 := strconv.Atoi(fields[0])
		v, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graph: matrixmarket: bad entry %q", line)
		}
		if u < 1 || u > rows || v < 1 || v > rows {
			return nil, fmt.Errorf("graph: matrixmarket: entry (%d,%d) out of range", u, v)
		}
		seen++
		if u != v {
			b.AddEdge(u-1, v-1)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading matrixmarket: %w", err)
	}
	if seen < nnz {
		return nil, fmt.Errorf("graph: matrixmarket: header claims %d entries, got %d", nnz, seen)
	}
	return b.Build(rows)
}

// WriteMatrixMarket writes g as a symmetric pattern matrix.
func WriteMatrixMarket(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate pattern symmetric\n%d %d %d\n",
		g.N(), g.N(), g.M()); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if u < int32(v) { // lower triangle, as symmetric MM convention
				if _, err := fmt.Fprintf(bw, "%d %d\n", v+1, u+1); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Format identifies an on-disk graph format.
type Format int

const (
	FormatUnknown Format = iota
	FormatEdgeList
	FormatDIMACS
	FormatMETIS
	FormatMatrixMarket
	FormatBinary
)

func (f Format) String() string {
	switch f {
	case FormatEdgeList:
		return "edgelist"
	case FormatDIMACS:
		return "dimacs"
	case FormatMETIS:
		return "metis"
	case FormatMatrixMarket:
		return "matrixmarket"
	case FormatBinary:
		return "binary"
	default:
		return "unknown"
	}
}

// DetectFormat guesses the format from the first bytes of the file:
// the binary magic, the MatrixMarket banner, a DIMACS "p"/"c" record, a
// METIS-shaped header, else an edge list.
func DetectFormat(head []byte) Format {
	if bytes.HasPrefix(head, binaryMagic[:]) {
		return FormatBinary
	}
	trimmed := bytes.TrimLeft(head, " \t\r\n")
	lower := bytes.ToLower(trimmed)
	switch {
	case bytes.HasPrefix(lower, []byte("%%matrixmarket")):
		return FormatMatrixMarket
	case bytes.HasPrefix(trimmed, []byte("p ")), bytes.HasPrefix(trimmed, []byte("c ")),
		bytes.HasPrefix(trimmed, []byte("e ")):
		return FormatDIMACS
	case len(trimmed) == 0:
		return FormatUnknown
	default:
		return FormatEdgeList
	}
}

// ReadFormatFile loads path in the named format. FormatUnknown auto-detects
// from the file's first bytes (METIS cannot be distinguished from an edge
// list reliably, so auto-detection maps headerless numeric files to the
// edge-list reader; pass FormatMETIS explicitly for METIS files).
func ReadFormatFile(path string, f Format) (*Graph, error) {
	if f == FormatUnknown {
		head, err := readHead(path, 64)
		if err != nil {
			return nil, err
		}
		f = DetectFormat(head)
	}
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	switch f {
	case FormatDIMACS:
		return ReadDIMACS(file)
	case FormatMETIS:
		return ReadMETIS(file)
	case FormatMatrixMarket:
		return ReadMatrixMarket(file)
	case FormatBinary:
		return ReadBinary(file)
	case FormatEdgeList:
		rr, err := ReadEdgeList(file)
		if err != nil {
			return nil, err
		}
		return rr.Graph, nil
	default:
		return nil, fmt.Errorf("graph: cannot detect format of %s", path)
	}
}

// WriteFormatFile writes g to path in the named format.
func WriteFormatFile(path string, g *Graph, f Format) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	switch f {
	case FormatDIMACS:
		werr = WriteDIMACS(file, g)
	case FormatMETIS:
		werr = WriteMETIS(file, g)
	case FormatMatrixMarket:
		werr = WriteMatrixMarket(file, g)
	case FormatBinary:
		werr = WriteBinary(file, g)
	case FormatEdgeList:
		werr = WriteEdgeList(file, g)
	default:
		werr = fmt.Errorf("graph: unsupported write format %v", f)
	}
	if werr != nil {
		file.Close()
		return werr
	}
	return file.Close()
}

func readHead(path string, n int) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, n)
	read, err := io.ReadFull(f, buf)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return nil, err
	}
	return buf[:read], nil
}
