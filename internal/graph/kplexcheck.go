package graph

// k-plex predicates. These are pure graph properties — no search machinery
// — so they live here rather than in the enumeration engine: both the
// engine (internal/kplex) and the result tooling (internal/sink) verify
// plexes against a graph, and keeping the predicates below both layers is
// what lets sink stay free of an engine dependency (the engine streams
// through sink.Stream, so an edge in the other direction would be a cycle).

// IsKPlex reports whether the vertex set P is a k-plex of g: every member
// has at least |P|-k neighbours inside P. The empty set and singletons are
// k-plexes for every k >= 1.
func IsKPlex(g *Graph, P []int, k int) bool {
	if len(P) == 0 {
		return true
	}
	in := make(map[int]bool, len(P))
	for _, v := range P {
		if v < 0 || v >= g.N() || in[v] {
			return false // out of range or duplicate
		}
		in[v] = true
	}
	need := len(P) - k
	for _, v := range P {
		d := 0
		for _, u := range g.Neighbors(v) {
			if in[int(u)] {
				d++
			}
		}
		if d < need {
			return false
		}
	}
	return true
}

// CanExtendKPlex reports whether some vertex outside P can be added to P
// while keeping it a k-plex. A k-plex is maximal iff this is false.
func CanExtendKPlex(g *Graph, P []int, k int) bool {
	in := make(map[int]bool, len(P))
	for _, v := range P {
		in[v] = true
	}
	// Candidate extenders must be adjacent to at least one member when
	// |P| >= k+1 (otherwise their deficiency |P|+1-d > k). Scanning the
	// union of neighbourhoods covers them; for tiny P scan everything.
	tryVertex := func(x int) bool {
		if in[x] {
			return false
		}
		ext := append(append(make([]int, 0, len(P)+1), P...), x)
		return IsKPlex(g, ext, k)
	}
	if len(P) > k {
		seen := make(map[int]bool)
		for _, v := range P {
			for _, u := range g.Neighbors(v) {
				if !seen[int(u)] {
					seen[int(u)] = true
					if tryVertex(int(u)) {
						return true
					}
				}
			}
		}
		return false
	}
	for x := 0; x < g.N(); x++ {
		if tryVertex(x) {
			return true
		}
	}
	return false
}

// IsMaximalKPlex reports whether P is a k-plex that no vertex of g extends.
func IsMaximalKPlex(g *Graph, P []int, k int) bool {
	return IsKPlex(g, P, k) && !CanExtendKPlex(g, P, k)
}
