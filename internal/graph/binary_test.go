package graph

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		n := 1 + rng.Intn(200)
		var b Builder
		for i := 0; i < n*4; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g, _ := b.Build(n)

		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("size changed: %d/%d -> %d/%d", g.N(), g.M(), g2.N(), g2.M())
		}
		for v := 0; v < g.N(); v++ {
			a, c := g.Neighbors(v), g2.Neighbors(v)
			if len(a) != len(c) {
				t.Fatalf("vertex %d adjacency length differs", v)
			}
			for i := range a {
				if a[i] != c[i] {
					t.Fatalf("vertex %d adjacency differs", v)
				}
			}
		}
	}
}

func TestBinaryEmptyAndSingleton(t *testing.T) {
	for _, n := range []int{0, 1} {
		g, _ := (&Builder{}).Build(n)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.N() != n || g2.M() != 0 {
			t.Fatalf("n=%d: round trip gave %d/%d", n, g2.N(), g2.M())
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC plus data beyond"),
		append([]byte{}, binaryMagic[:]...), // header only, no counts
	}
	for i, c := range cases {
		if _, err := ReadBinary(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Valid header but truncated adjacency.
	var buf bytes.Buffer
	g := mustBuild(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(full[:len(full)-1])); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestBinaryFileHelpers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	g := mustBuild(t, 5, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	if err := WriteBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() {
		t.Fatal("file round trip lost edges")
	}
}

func TestReadAnyFileDetectsFormat(t *testing.T) {
	dir := t.TempDir()
	g := mustBuild(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})

	binPath := filepath.Join(dir, "g.bin")
	if err := WriteBinaryFile(binPath, g); err != nil {
		t.Fatal(err)
	}
	rr, err := ReadAnyFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Graph.M() != g.M() {
		t.Fatal("binary auto-detect failed")
	}

	txtPath := filepath.Join(dir, "g.txt")
	var sb strings.Builder
	if err := WriteEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(txtPath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	rr, err = ReadAnyFile(txtPath)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Graph.M() != g.M() {
		t.Fatal("text auto-detect failed")
	}

	if _, err := ReadAnyFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestQuickBinaryRoundTrip property-checks the codec over random graphs.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		var b Builder
		for i := 0; i < n*2; i++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		g, _ := b.Build(n)
		var buf bytes.Buffer
		if WriteBinary(&buf, g) != nil {
			return false
		}
		g2, err := ReadBinary(&buf)
		if err != nil || g2.N() != g.N() || g2.M() != g.M() {
			return false
		}
		for v := 0; v < g.N(); v++ {
			a, c := g.Neighbors(v), g2.Neighbors(v)
			if len(a) != len(c) {
				return false
			}
			for i := range a {
				if a[i] != c[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
