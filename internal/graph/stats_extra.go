package graph

import "math"

// Extended dataset statistics beyond the paper's Table 2 columns. These back
// the cmd/kplexstats tool and the dataset-calibration tests that check the
// synthetic suite tracks its real-graph analogues (degree skew, shell
// structure, clustering).

// DegreeHistogram returns hist where hist[d] is the number of vertices with
// degree d. len(hist) == MaxDegree()+1 (empty slice for an empty graph).
func DegreeHistogram(g *Graph) []int {
	if g.N() == 0 {
		return nil
	}
	hist := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.N(); v++ {
		hist[g.Degree(v)]++
	}
	return hist
}

// ShellSizes returns sizes where sizes[c] is the number of vertices with
// coreness exactly c. The paper's degeneracy ordering lists vertices in
// segments of these k-shells.
func ShellSizes(g *Graph) []int {
	cd := Cores(g)
	if g.N() == 0 {
		return nil
	}
	sizes := make([]int, cd.Degeneracy+1)
	for _, c := range cd.Coreness {
		sizes[c]++
	}
	return sizes
}

// DegreeAssortativity returns the Pearson correlation of degrees across
// edges (Newman's r). NaN-free: returns 0 when degrees have no variance or
// the graph has no edge. Social graphs are typically assortative (r > 0),
// web crawls disassortative (r < 0); the synthetic suite mirrors this.
func DegreeAssortativity(g *Graph) float64 {
	m2 := float64(2 * g.M())
	if m2 == 0 {
		return 0
	}
	// Sums over directed edge endpoints (each undirected edge twice, both
	// orientations, which symmetrises the estimator).
	var sumXY, sumX, sumX2 float64
	for u := 0; u < g.N(); u++ {
		du := float64(g.Degree(u))
		for _, v := range g.Neighbors(u) {
			dv := float64(g.Degree(int(v)))
			sumXY += du * dv
			sumX += du
			sumX2 += du * du
		}
	}
	meanX := sumX / m2
	varX := sumX2/m2 - meanX*meanX
	if varX <= 0 {
		return 0
	}
	cov := sumXY/m2 - meanX*meanX
	r := cov / varX
	if math.IsNaN(r) || math.IsInf(r, 0) {
		return 0
	}
	return r
}

// ExtendedStats bundles the optional statistics.
type ExtendedStats struct {
	Stats
	AvgDegree     float64
	Triangles     int64
	Transitivity  float64
	AvgClustering float64
	Assortativity float64
	Components    int
	ApproxDiam    int // double-sweep lower bound
}

// ComputeExtendedStats computes every statistic; O(m^{3/2}) due to the
// triangle count, fine for the synthetic suite sizes.
func ComputeExtendedStats(g *Graph) ExtendedStats {
	s := ExtendedStats{
		Stats:         ComputeStats(g),
		Transitivity:  Transitivity(g),
		AvgClustering: AverageClustering(g),
		Assortativity: DegreeAssortativity(g),
		Triangles:     Triangles(g),
	}
	s.AvgDegree = s.Stats.AverageDegree()
	_, s.Components = ConnectedComponents(g)
	s.ApproxDiam = ApproxDiameter(g, 0)
	return s
}
