package graph

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func randomGraph(t *testing.T, n int, p float64, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var b Builder
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				b.AddEdge(u, v)
			}
		}
	}
	g, err := b.Build(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func graphsEqual(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := 0; v < a.N(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

func TestDIMACSRoundTrip(t *testing.T) {
	g := randomGraph(t, 30, 0.2, 1)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Error("DIMACS round trip changed the graph")
	}
}

func TestDIMACSParsesComments(t *testing.T) {
	in := "c a comment\np edge 4 3\ne 1 2\ne 2 3\nn 1 5\ne 3 4\n"
	g, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Errorf("got n=%d m=%d, want 4, 3", g.N(), g.M())
	}
}

func TestDIMACSErrors(t *testing.T) {
	cases := map[string]string{
		"edge before p":  "e 1 2\n",
		"bad count":      "p edge x 3\n",
		"short p":        "p edge\n",
		"out of range":   "p edge 3 1\ne 1 9\n",
		"unknown record": "p edge 3 1\nz 1 2\n",
		"dup p":          "p edge 3 1\np edge 3 1\n",
		"no p":           "c only comments\n",
		"bad endpoints":  "p edge 3 1\ne a b\n",
		"short e":        "p edge 3 1\ne 1\n",
	}
	for name, in := range cases {
		if _, err := ReadDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestMETISRoundTrip(t *testing.T) {
	g := randomGraph(t, 25, 0.25, 2)
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Error("METIS round trip changed the graph")
	}
}

func TestMETISIsolatedVertices(t *testing.T) {
	// Vertex 2 (1-based 3) is isolated: its adjacency line is blank.
	in := "4 1\n2\n1\n\n\n"
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 || g.M() != 1 {
		t.Fatalf("got n=%d m=%d, want 4, 1", g.N(), g.M())
	}
	if g.Degree(2) != 0 || g.Degree(3) != 0 {
		t.Error("vertices 2,3 should be isolated")
	}
}

func TestMETISErrors(t *testing.T) {
	cases := map[string]string{
		"no header":     "",
		"short header":  "5\n",
		"bad counts":    "x y\n",
		"weighted":      "3 2 011\n2\n1 3\n2\n",
		"missing lines": "3 2\n2\n",
		"out of range":  "2 1\n5\n\n",
		"bad neighbour": "2 1\nfoo\n\n",
		"edge mismatch": "3 5\n2\n1\n\n",
	}
	for name, in := range cases {
		if _, err := ReadMETIS(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestMatrixMarketRoundTrip(t *testing.T) {
	g := randomGraph(t, 20, 0.3, 3)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Error("MatrixMarket round trip changed the graph")
	}
}

func TestMatrixMarketDropsDiagonalAndWeights(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real symmetric\n" +
		"% a comment\n3 3 3\n1 1 5.0\n2 1 1.5\n3 2 2.5\n"
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Errorf("got n=%d m=%d, want 3, 2", g.N(), g.M())
	}
}

func TestMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       "",
		"bad banner":  "%%NotMM matrix coordinate\n1 1 0\n",
		"dense":       "%%MatrixMarket matrix array real general\n2 2\n",
		"rectangular": "%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 2\n",
		"short entry": "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 1\n1\n",
		"range":       "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 1\n9 1\n",
		"undercount":  "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 5\n2 1\n",
		"bad size":    "%%MatrixMarket matrix coordinate pattern symmetric\nx y z\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestDetectFormat(t *testing.T) {
	cases := []struct {
		head string
		want Format
	}{
		{"%%MatrixMarket matrix coordinate", FormatMatrixMarket},
		{"p edge 5 4\n", FormatDIMACS},
		{"c comment\np edge 1 0\n", FormatDIMACS},
		{"0 1\n1 2\n", FormatEdgeList},
		{"", FormatUnknown},
	}
	for _, c := range cases {
		if got := DetectFormat([]byte(c.head)); got != c.want {
			t.Errorf("DetectFormat(%q) = %v, want %v", c.head, got, c.want)
		}
	}
	if got := DetectFormat(binaryMagic[:]); got != FormatBinary {
		t.Errorf("DetectFormat(magic) = %v, want binary", got)
	}
}

func TestFormatFileRoundTrips(t *testing.T) {
	g := randomGraph(t, 15, 0.3, 4)
	dir := t.TempDir()
	for _, f := range []Format{FormatEdgeList, FormatDIMACS, FormatMETIS, FormatMatrixMarket, FormatBinary} {
		path := filepath.Join(dir, "g."+f.String())
		if err := WriteFormatFile(path, g, f); err != nil {
			t.Fatalf("%v: write: %v", f, err)
		}
		got, err := ReadFormatFile(path, f)
		if err != nil {
			t.Fatalf("%v: read: %v", f, err)
		}
		if !graphsEqual(g, got) {
			t.Errorf("%v: round trip changed the graph", f)
		}
		// Auto-detection (METIS excluded: headerless numeric files are
		// indistinguishable from edge lists).
		if f == FormatMETIS {
			continue
		}
		got, err = ReadFormatFile(path, FormatUnknown)
		if err != nil {
			t.Fatalf("%v: autodetect read: %v", f, err)
		}
		if !graphsEqual(g, got) {
			t.Errorf("%v: autodetect round trip changed the graph", f)
		}
	}
}

func TestFormatString(t *testing.T) {
	names := map[Format]string{
		FormatUnknown: "unknown", FormatEdgeList: "edgelist", FormatDIMACS: "dimacs",
		FormatMETIS: "metis", FormatMatrixMarket: "matrixmarket", FormatBinary: "binary",
	}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("Format(%d).String() = %q, want %q", int(f), f.String(), want)
		}
	}
}
