package graph

// BFS utilities. The seed-subgraph construction of Algorithm 2 is a
// two-level BFS from each seed; the generic routines here support the
// verification tools, the dataset statistics, and the diameter checks of
// Theorem 3.3 in tests.

// BFSDistances returns the hop distance from src to every vertex, -1 for
// unreachable vertices. O(n + m).
func BFSDistances(g *Graph, src int) []int32 {
	n := g.N()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= n {
		return dist
	}
	dist[src] = 0
	queue := make([]int32, 0, 64)
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		dv := dist[v]
		for _, u := range g.Neighbors(int(v)) {
			if dist[u] < 0 {
				dist[u] = dv + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Eccentricity returns the largest finite BFS distance from v (0 when v is
// isolated).
func Eccentricity(g *Graph, v int) int {
	ecc := 0
	for _, d := range BFSDistances(g, v) {
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc
}

// ApproxDiameter lower-bounds the diameter with the classic double-sweep
// heuristic: BFS from src, then BFS again from the farthest vertex found.
// Exact on trees; a strong lower bound in general. Returns 0 for graphs
// with no edges.
func ApproxDiameter(g *Graph, src int) int {
	if g.N() == 0 {
		return 0
	}
	if src < 0 || src >= g.N() {
		src = 0
	}
	far, d := farthest(g, src)
	if d == 0 {
		return 0
	}
	_, d2 := farthest(g, far)
	if d2 > d {
		return d2
	}
	return d
}

// farthest returns a vertex at maximum finite BFS distance from src, and
// that distance.
func farthest(g *Graph, src int) (v, dist int) {
	v, dist = src, 0
	for u, d := range BFSDistances(g, src) {
		if int(d) > dist {
			v, dist = u, int(d)
		}
	}
	return v, dist
}

// WithinHops returns the sorted vertices at distance 1..h from src
// (excluding src itself). h <= 0 yields nil. This is the generic form of
// the 2-hop neighbourhood that defines the seed subgraphs (Theorem 3.3).
func WithinHops(g *Graph, src, h int) []int32 {
	if h <= 0 || src < 0 || src >= g.N() {
		return nil
	}
	var out []int32
	for u, d := range BFSDistances(g, src) {
		if d > 0 && int(d) <= h {
			out = append(out, int32(u))
		}
	}
	return out
}
