package graph

// Fuzz targets for every graph parser. The contract under test: a parser
// given arbitrary bytes must either return a well-formed Graph or an error
// — it must never panic, hang, or allocate memory proportional to a
// header-declared size that the input's actual data does not back up.
// Seed corpora come from testdata (written by the Write* counterparts)
// plus hand-picked corrupt inputs for the interesting error paths.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// addSeedFile adds the contents of a testdata file to the corpus.
func addSeedFile(f *testing.F, name string) {
	f.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		f.Fatalf("seed corpus: %v", err)
	}
	f.Add(data)
}

// checkInvariants validates the CSR structure of a parsed graph: sorted
// adjacency, no self-loops, no duplicates, and symmetric edges.
func checkInvariants(t *testing.T, g *Graph) {
	t.Helper()
	n := g.N()
	edges := 0
	for v := 0; v < n; v++ {
		nb := g.Neighbors(v)
		edges += len(nb)
		for i, u := range nb {
			if int(u) < 0 || int(u) >= n {
				t.Fatalf("vertex %d: neighbour %d out of range [0,%d)", v, u, n)
			}
			if int(u) == v {
				t.Fatalf("vertex %d: self-loop survived normalization", v)
			}
			if i > 0 && nb[i-1] >= u {
				t.Fatalf("vertex %d: adjacency not strictly sorted at %d", v, i)
			}
			if !g.HasEdge(int(u), v) {
				t.Fatalf("edge (%d,%d) not symmetric", v, u)
			}
		}
	}
	if edges != 2*g.M() {
		t.Fatalf("directed arc count %d != 2*M=%d", edges, 2*g.M())
	}
}

func FuzzReadEdgeList(f *testing.F) {
	addSeedFile(f, "small.txt")
	f.Add([]byte("# comment\n1 2\n2 3\n1 3\n"))
	f.Add([]byte("1 1\n"))                    // self-loop
	f.Add([]byte("9223372036854775807 0\n"))  // max int64 label
	f.Add([]byte("99999999999999999999 1\n")) // overflows int64
	f.Add([]byte("1 -2\n"))                   // negative label
	f.Add([]byte("3 \n"))                     // missing second field
	f.Fuzz(func(t *testing.T, data []byte) {
		rr, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkInvariants(t, rr.Graph)
		if len(rr.OrigID) != rr.Graph.N() {
			t.Fatalf("OrigID length %d != N %d", len(rr.OrigID), rr.Graph.N())
		}
		// Round-trip: writing and re-reading must preserve the shape.
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, rr.Graph); err != nil {
			t.Fatalf("write-back: %v", err)
		}
		rr2, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		// Isolated vertices are not representable in an edge list, so only
		// the edge count is guaranteed to survive the round trip.
		if rr2.Graph.M() != rr.Graph.M() {
			t.Fatalf("round trip changed M: %d -> %d", rr.Graph.M(), rr2.Graph.M())
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	addSeedFile(f, "small.bin")
	f.Add([]byte("KPLXGRF\x01"))             // header only
	f.Add([]byte("KPLXGRF\x01\x03\x02"))     // sizes, no adjacency
	f.Add([]byte("not a kplex binary file")) // wrong magic
	// Header declaring a huge edge count with no data behind it: must be
	// rejected without attempting a proportional allocation.
	f.Add(append([]byte("KPLXGRF\x01"), 0x04, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkInvariants(t, g)
		// Round-trip: the binary format is canonical, so bytes must match.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("write-back: %v", err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if g2.N() != g.N() || g2.M() != g.M() {
			t.Fatalf("round trip changed shape: (%d,%d) -> (%d,%d)", g.N(), g.M(), g2.N(), g2.M())
		}
	})
}

func FuzzReadDIMACS(f *testing.F) {
	addSeedFile(f, "small.dimacs")
	f.Add([]byte("p edge 3 2\ne 1 2\ne 2 3\n"))
	f.Add([]byte("p edge 9000000000000000000 0\n")) // absurd declared n
	f.Add([]byte("e 1 2\n"))                        // edge before problem line
	f.Add([]byte("p edge 2 1\ne 1 9\n"))            // endpoint out of range
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadDIMACS(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkInvariants(t, g)
	})
}

func FuzzReadMETIS(f *testing.F) {
	addSeedFile(f, "small.metis")
	f.Add([]byte("3 2\n2\n1 3\n2\n"))
	f.Add([]byte("2 9000000000000000000\n\n\n")) // absurd declared m
	f.Add([]byte("3 1\n9\n\n\n"))                // neighbour out of range
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadMETIS(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkInvariants(t, g)
	})
}

func FuzzReadMatrixMarket(f *testing.F) {
	addSeedFile(f, "small.mtx")
	f.Add([]byte("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate pattern symmetric\n9000000000000000000 9000000000000000000 0\n"))
	f.Add([]byte("%%MatrixMarket matrix coordinate pattern symmetric\n2 2 -1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadMatrixMarket(bytes.NewReader(data))
		if err != nil {
			return
		}
		checkInvariants(t, g)
	})
}
