// Package graph provides the undirected simple-graph substrate used by the
// k-plex enumerator: a compressed-sparse-row representation with sorted
// adjacency, edge-list I/O, linear-time core decomposition (degeneracy
// ordering via peeling), and (q-k)-core reduction (Theorem 3.5 of the paper).
package graph

import (
	"fmt"
	"sort"
	"sync"
)

// Graph is an undirected simple graph in CSR form. Vertices are 0..N()-1.
// Adjacency lists are sorted ascending, contain no self-loops and no
// duplicates. The zero value is an empty graph. A Graph must not be copied
// after first use (its memoized digest holds a sync.Once).
type Graph struct {
	offsets []int32 // len N()+1
	adj     []int32 // len 2*M()

	// The content digest is memoized: the CSR is immutable after Build, so
	// hashing it once serves every later cache lookup (the serving layer
	// keys result and prepared-graph caches on it).
	digestOnce sync.Once
	digest     [32]byte
}

// N returns the number of vertices.
func (g *Graph) N() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.adj) / 2 }

// Neighbors returns the sorted adjacency list of v. The returned slice
// aliases the graph's storage and must not be modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// MaxDegree returns Δ, the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// HasEdge reports whether (u, v) ∈ E using binary search on u's adjacency.
func (g *Graph) HasEdge(u, v int) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
	return i < len(nb) && nb[i] == int32(v)
}

// Edge is an undirected edge between U and V.
type Edge struct {
	U, V int32
}

// Builder accumulates edges and produces a normalized Graph. Duplicate
// edges, reversed duplicates and self-loops are dropped. The zero value is
// ready to use.
type Builder struct {
	edges []Edge
	maxV  int32
}

// AddEdge records an undirected edge. Negative endpoints are rejected at
// Build time. Self-loops are silently discarded.
func (b *Builder) AddEdge(u, v int) {
	if u == v {
		return
	}
	if int32(u) > b.maxV {
		b.maxV = int32(u)
	}
	if int32(v) > b.maxV {
		b.maxV = int32(v)
	}
	b.edges = append(b.edges, Edge{int32(u), int32(v)})
}

// Grow pre-allocates room for n additional edges.
func (b *Builder) Grow(n int) {
	if cap(b.edges)-len(b.edges) < n {
		grown := make([]Edge, len(b.edges), len(b.edges)+n)
		copy(grown, b.edges)
		b.edges = grown
	}
}

// NumEdgesAdded returns the number of AddEdge calls retained so far
// (before deduplication).
func (b *Builder) NumEdgesAdded() int { return len(b.edges) }

// Build normalizes the accumulated edges into a Graph with n vertices. If
// n < 0 the vertex count is inferred as maxVertexID+1.
func (b *Builder) Build(n int) (*Graph, error) {
	if n < 0 {
		n = int(b.maxV) + 1
		if len(b.edges) == 0 {
			n = 0
		}
	}
	for _, e := range b.edges {
		if e.U < 0 || e.V < 0 {
			return nil, fmt.Errorf("graph: negative vertex id in edge (%d, %d)", e.U, e.V)
		}
		if int(e.U) >= n || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d, %d) out of range for n=%d", e.U, e.V, n)
		}
	}
	// Count directed arcs (each undirected edge contributes two).
	deg := make([]int32, n+1)
	for _, e := range b.edges {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	offsets := make([]int32, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + deg[i+1]
	}
	adj := make([]int32, offsets[n])
	cur := make([]int32, n)
	copy(cur, offsets[:n])
	for _, e := range b.edges {
		adj[cur[e.U]] = e.V
		cur[e.U]++
		adj[cur[e.V]] = e.U
		cur[e.V]++
	}
	// Sort each adjacency list and strip duplicates in place.
	outOff := make([]int32, n+1)
	w := int32(0)
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		row := adj[lo:hi]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		outOff[v] = w
		var prev int32 = -1
		for _, u := range row {
			if u != prev {
				adj[w] = u
				w++
				prev = u
			}
		}
	}
	outOff[n] = w
	return &Graph{offsets: outOff, adj: adj[:w:w]}, nil
}

// FromEdges builds a graph directly from an edge slice (convenience for
// tests and generators).
func FromEdges(n int, edges []Edge) (*Graph, error) {
	var b Builder
	b.Grow(len(edges))
	for _, e := range edges {
		b.AddEdge(int(e.U), int(e.V))
	}
	return b.Build(n)
}

// Edges returns all undirected edges (u < v) in ascending order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.M())
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Neighbors(v) {
			if int32(v) < u {
				out = append(out, Edge{int32(v), u})
			}
		}
	}
	return out
}

// InducedSubgraph returns the subgraph induced by keep (which need not be
// sorted), along with origID mapping new vertex ids to original ids.
func (g *Graph) InducedSubgraph(keep []int) (sub *Graph, origID []int32) {
	return InducedSubgraphOf(g, keep)
}

// InducedSubgraphOf is InducedSubgraph over any CSR source: the kept rows
// are read through the interface, so a paged on-disk graph is reduced to
// an in-memory core without ever materializing the full adjacency.
func InducedSubgraphOf(g CSR, keep []int) (sub *Graph, origID []int32) {
	newID := make([]int32, g.N())
	for i := range newID {
		newID[i] = -1
	}
	origID = make([]int32, len(keep))
	sorted := append([]int(nil), keep...)
	sort.Ints(sorted)
	for i, v := range sorted {
		newID[v] = int32(i)
		origID[i] = int32(v)
	}
	var b Builder
	for i, v := range sorted {
		for _, u := range g.Neighbors(v) {
			if j := newID[u]; j > int32(i) {
				b.AddEdge(i, int(j))
			}
		}
	}
	sub, err := b.Build(len(sorted))
	if err != nil {
		// keep came from g's own vertex range; Build cannot fail.
		panic("graph: induced subgraph build: " + err.Error())
	}
	return sub, origID
}
