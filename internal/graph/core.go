package graph

// This file implements the linear-time peeling machinery the paper relies
// on: core decomposition (coreness of every vertex), the degeneracy ordering
// η used to seed search tasks (Algorithm 2 line 2), and the (q-k)-core
// reduction of Theorem 3.5.

// CoreDecomposition holds the result of the O(n+m) peeling algorithm
// (Batagelj & Zaversnik). Order lists vertices in degeneracy order η:
// vertices are removed smallest-current-degree first, ties broken by vertex
// id so that η is deterministic (the paper orders within-shell vertices by
// input id for the same reason).
type CoreDecomposition struct {
	Coreness   []int32 // coreness (max k such that v is in a k-core)
	Order      []int32 // degeneracy ordering η
	Pos        []int32 // Pos[v] = index of v in Order
	Degeneracy int     // D = max coreness
}

// Cores computes the core decomposition of g by bucket peeling.
func Cores(g CSR) *CoreDecomposition {
	n := g.N()
	cd := &CoreDecomposition{
		Coreness: make([]int32, n),
		Order:    make([]int32, n),
		Pos:      make([]int32, n),
	}
	if n == 0 {
		return cd
	}
	deg := make([]int32, n)
	maxDeg := int32(0)
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// bin[d] = start index of bucket d within vert.
	bin := make([]int32, maxDeg+2)
	for _, d := range deg {
		bin[d+1]++
	}
	for d := int32(1); d <= maxDeg+1; d++ {
		bin[d] += bin[d-1]
	}
	vert := make([]int32, n) // vertices sorted by current degree
	pos := make([]int32, n)  // position of vertex in vert
	fill := make([]int32, maxDeg+1)
	copy(fill, bin[:maxDeg+1])
	for v := 0; v < n; v++ {
		pos[v] = fill[deg[v]]
		vert[pos[v]] = int32(v)
		fill[deg[v]]++
	}
	// vert within each bucket is in ascending vertex id already because we
	// inserted v in increasing order; peeling therefore breaks ties by id.
	cur := int32(0) // running coreness
	for i := 0; i < n; i++ {
		v := vert[i]
		if deg[v] > cur {
			cur = deg[v]
		}
		cd.Coreness[v] = cur
		cd.Order[i] = v
		cd.Pos[v] = int32(i)
		for _, u := range g.Neighbors(int(v)) {
			if deg[u] <= deg[v] {
				continue // already peeled or in the current bucket floor
			}
			// Move u one bucket down: swap it with the first vertex of its
			// bucket and advance that bucket's start.
			du, pu := deg[u], pos[u]
			pw := bin[du]
			w := vert[pw]
			if u != w {
				vert[pu], vert[pw] = w, u
				pos[u], pos[w] = pw, pu
			}
			bin[du]++
			deg[u]--
		}
	}
	cd.Degeneracy = int(cur)
	return cd
}

// Degeneracy returns D, the degeneracy of g.
func Degeneracy(g CSR) int { return Cores(g).Degeneracy }

// KCore returns the subgraph induced by vertices of coreness >= k, together
// with the mapping from new ids to original ids. Theorem 3.5: every k-plex
// with at least q vertices is contained in the (q-k)-core, so the enumerator
// calls KCore(g, q-k) before doing anything else. For k <= 0 the input is
// returned as-is (identity mapping), so an out-of-core source is never
// materialized just to be copied.
func KCore(g CSR, k int) (sub CSR, origID []int32) {
	if k <= 0 {
		ids := make([]int32, g.N())
		for i := range ids {
			ids[i] = int32(i)
		}
		return g, ids
	}
	cd := Cores(g)
	keep := make([]int, 0, g.N())
	for v := 0; v < g.N(); v++ {
		if int(cd.Coreness[v]) >= k {
			keep = append(keep, v)
		}
	}
	return InducedSubgraphOf(g, keep)
}

// DegeneracyOrderedCopy relabels g so that vertex i is the i-th vertex of
// the degeneracy ordering. The enumerator works on this copy: "later than
// v_i in η" then becomes the simple comparison u > i. origID maps new ids
// back to g's ids.
func DegeneracyOrderedCopy(g CSR) (relabeled *Graph, origID []int32) {
	cd := Cores(g)
	n := g.N()
	origID = make([]int32, n)
	copy(origID, cd.Order)
	var b Builder
	b.Grow(g.M())
	for newU := 0; newU < n; newU++ {
		oldU := cd.Order[newU]
		for _, oldV := range g.Neighbors(int(oldU)) {
			newV := cd.Pos[oldV]
			if int32(newU) < newV {
				b.AddEdge(newU, int(newV))
			}
		}
	}
	relabeled, err := b.Build(n)
	if err != nil {
		panic("graph: degeneracy relabel: " + err.Error())
	}
	return relabeled, origID
}
