package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Digest returns a SHA-256 over the graph's canonical CSR form: n, then
// each vertex's sorted neighbour list delta-encoded as uvarints. Build
// sorts and deduplicates every adjacency row, so two graphs with the same
// vertex count and edge set digest identically no matter how (or in what
// order) their edges were added. The serving layer keys result caches on
// this digest, which is what lets the same graph registered under two
// names — or reloaded from disk — share cached enumeration results.
//
// The digest is computed once per Graph and memoized (the CSR is immutable
// after Build), so repeat cache lookups never rehash the adjacency.
func Digest(g *Graph) [32]byte {
	g.digestOnce.Do(func() { g.digest = computeDigest(g) })
	return g.digest
}

func computeDigest(g CSR) [32]byte {
	h := sha256.New()
	var buf [2 * binary.MaxVarintLen64]byte
	n := g.N()
	w := binary.PutUvarint(buf[:], uint64(n))
	h.Write(buf[:w])
	for v := 0; v < n; v++ {
		row := g.Neighbors(v)
		w = binary.PutUvarint(buf[:], uint64(len(row)))
		prev := int32(0)
		for _, u := range row {
			w += binary.PutUvarint(buf[w:], uint64(u-prev))
			prev = u
			if w >= binary.MaxVarintLen64 {
				h.Write(buf[:w])
				w = 0
			}
		}
		h.Write(buf[:w])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// DigestHex returns Digest as a lowercase hex string.
func DigestHex(g *Graph) string {
	d := Digest(g)
	return hex.EncodeToString(d[:])
}

// DigestOf returns the content digest of any CSR source. An in-memory
// *Graph memoizes the hash; a source that carries a precomputed digest
// (StoredDigester — the on-disk store keeps one in its header) answers
// without touching the adjacency at all; anything else is hashed by
// streaming its rows through the same canonical encoding, so every path
// yields the same identity for the same graph content.
func DigestOf(g CSR) [32]byte {
	switch t := g.(type) {
	case *Graph:
		return Digest(t)
	case StoredDigester:
		return t.StoredDigest()
	}
	return computeDigest(g)
}

// DigestHexOf returns DigestOf as a lowercase hex string.
func DigestHexOf(g CSR) string {
	d := DigestOf(g)
	return hex.EncodeToString(d[:])
}
