package graph

// Binary graph serialization. Edge-list text is the interchange format,
// but at the paper's graph sizes (10⁸-10⁹ edges) text parsing dominates
// load time, so the tools also speak a compact binary format: a small
// header followed by each vertex's forward adjacency (neighbours greater
// than the vertex) as varint-encoded deltas. Typical web/social graphs
// compress to ~1-2 bytes per edge.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// binaryMagic identifies the format; the trailing byte is the version.
var binaryMagic = [8]byte{'K', 'P', 'L', 'X', 'G', 'R', 'F', 1}

// WriteBinary serialises g to w in the compact binary format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var hdr [binary.MaxVarintLen64 * 2]byte
	n := binary.PutUvarint(hdr[:], uint64(g.N()))
	n += binary.PutUvarint(hdr[n:], uint64(g.M()))
	if _, err := bw.Write(hdr[:n]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	for v := 0; v < g.N(); v++ {
		// Forward neighbours only; each undirected edge is stored once.
		nb := g.Neighbors(v)
		start := 0
		for start < len(nb) && nb[start] <= int32(v) {
			start++
		}
		fwd := nb[start:]
		n := binary.PutUvarint(buf[:], uint64(len(fwd)))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prev := int32(v)
		for _, u := range fwd {
			n := binary.PutUvarint(buf[:], uint64(u-prev))
			if _, err := bw.Write(buf[:n]); err != nil {
				return err
			}
			prev = u
		}
	}
	return bw.Flush()
}

// ReadBinary parses a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: binary header: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: not a kplex binary graph (magic %q)", magic[:])
	}
	n64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("graph: vertex count: %w", err)
	}
	m64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("graph: edge count: %w", err)
	}
	const maxReasonable = 1 << 40
	if n64 > maxReasonable || m64 > maxReasonable {
		return nil, fmt.Errorf("graph: implausible sizes n=%d m=%d", n64, m64)
	}
	n, m := int(n64), int(m64)

	// Pre-allocation is capped: the header's edge count is untrusted, and a
	// crafted m near the plausibility bound would demand terabytes here. The
	// builder grows on demand, so honest large graphs still load.
	var b Builder
	b.Grow(min(m, maxPreallocEdges))
	total := 0
	for v := 0; v < n; v++ {
		cnt, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("graph: vertex %d adjacency length: %w", v, err)
		}
		// Compare in uint64: a huge cnt must not wrap the int accumulator.
		if cnt > uint64(m-total) {
			return nil, fmt.Errorf("graph: adjacency overruns declared edge count %d", m)
		}
		total += int(cnt)
		prev := uint64(v)
		for i := uint64(0); i < cnt; i++ {
			delta, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("graph: vertex %d edge %d: %w", v, i, err)
			}
			// Compare before adding: a huge delta must not wrap prev back
			// into range. prev < n holds here, so n-prev cannot underflow.
			if delta >= uint64(n)-prev {
				return nil, fmt.Errorf("graph: vertex %d has neighbour %d out of range", v, prev+delta)
			}
			prev += delta
			b.AddEdge(v, int(prev))
		}
	}
	if total != m {
		return nil, fmt.Errorf("graph: read %d edges, header declared %d", total, m)
	}
	g, err := b.Build(n)
	if err != nil {
		return nil, err
	}
	if g.M() != m {
		return nil, fmt.Errorf("graph: %d edges after normalization, header declared %d (duplicate edges in file?)", g.M(), m)
	}
	return g, nil
}

// WriteBinaryFile writes g to path in binary format.
func WriteBinaryFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBinaryFile reads a binary graph from path.
func ReadBinaryFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// ReadAnyFile loads a graph from path, auto-detecting the binary format by
// its magic bytes and falling back to edge-list text. For text inputs the
// original vertex labels are returned; binary graphs are already compact.
func ReadAnyFile(path string) (*ReadResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [8]byte
	n, err := io.ReadFull(f, magic[:])
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if n == len(magic) && magic == binaryMagic {
		g, err := ReadBinary(f)
		if err != nil {
			return nil, err
		}
		ids := make([]int64, g.N())
		for i := range ids {
			ids[i] = int64(i)
		}
		return &ReadResult{Graph: g, OrigID: ids}, nil
	}
	return ReadEdgeList(f)
}
