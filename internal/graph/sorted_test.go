package graph

import (
	"math/rand"
	"slices"
	"testing"
)

// naiveIntersect is the map-based oracle for the merge kernels.
func naiveIntersect(a, b []int32) []int32 {
	in := make(map[int32]bool, len(a))
	for _, x := range a {
		in[x] = true
	}
	var out []int32
	for _, x := range b {
		if in[x] {
			out = append(out, x)
		}
	}
	slices.Sort(out)
	return out
}

func sortedRand(r *rand.Rand, n, space int) []int32 {
	seen := make(map[int32]bool)
	for len(seen) < n {
		seen[int32(r.Intn(space))] = true
	}
	out := make([]int32, 0, n)
	for x := range seen {
		out = append(out, x)
	}
	slices.Sort(out)
	return out
}

func TestCountCommonEmptyAndNil(t *testing.T) {
	some := []int32{1, 5, 9}
	cases := []struct {
		name string
		a, b []int32
	}{
		{"nil-nil", nil, nil},
		{"nil-some", nil, some},
		{"some-nil", some, nil},
		{"empty-some", []int32{}, some},
		{"some-empty", some, []int32{}},
		{"empty-empty", []int32{}, []int32{}},
	}
	for _, c := range cases {
		if got := CountCommon(c.a, c.b); got != 0 {
			t.Errorf("%s: CountCommon = %d, want 0", c.name, got)
		}
		if got := IntersectTo(nil, c.a, c.b); len(got) != 0 {
			t.Errorf("%s: IntersectTo = %v, want empty", c.name, got)
		}
	}
}

func TestCountCommonDifferential(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		a := sortedRand(r, r.Intn(40), 60)
		b := sortedRand(r, r.Intn(40), 60)
		want := naiveIntersect(a, b)
		if got := CountCommon(a, b); got != len(want) {
			t.Fatalf("trial %d: CountCommon = %d, want %d", trial, got, len(want))
		}
		if got := IntersectTo(nil, a, b); !slices.Equal(got, want) {
			t.Fatalf("trial %d: IntersectTo = %v, want %v", trial, got, want)
		}
	}
}

// TestIntersectToAppends pins that IntersectTo extends dst rather than
// replacing it.
func TestIntersectToAppends(t *testing.T) {
	dst := []int32{-3}
	got := IntersectTo(dst, []int32{1, 2, 3}, []int32{2, 3, 4})
	if !slices.Equal(got, []int32{-3, 2, 3}) {
		t.Fatalf("IntersectTo = %v, want [-3 2 3]", got)
	}
}

// TestIntersectToInPlace locks the documented aliasing support: dst may be
// a[:0] or b[:0], overwriting an input with the intersection in place.
func TestIntersectToInPlace(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 300; trial++ {
		a := sortedRand(r, r.Intn(40), 60)
		b := sortedRand(r, r.Intn(40), 60)
		want := naiveIntersect(a, b)

		a1 := slices.Clone(a)
		if got := IntersectTo(a1[:0], a1, b); !slices.Equal(got, want) {
			t.Fatalf("trial %d: in-place dst=a[:0] = %v, want %v", trial, got, want)
		}
		b1 := slices.Clone(b)
		if got := IntersectTo(b1[:0], a, b1); !slices.Equal(got, want) {
			t.Fatalf("trial %d: in-place dst=b[:0] = %v, want %v", trial, got, want)
		}
	}
}

// TestIntersectToInPlaceNoRealloc pins the cap argument in the contract:
// in-place intersection reuses the input's backing array.
func TestIntersectToInPlaceNoRealloc(t *testing.T) {
	a := []int32{1, 2, 3, 4, 5}
	b := []int32{2, 4, 6}
	got := IntersectTo(a[:0], a, b)
	if !slices.Equal(got, []int32{2, 4}) {
		t.Fatalf("got %v", got)
	}
	if &got[0] != &a[0] {
		t.Fatal("in-place IntersectTo reallocated away from a's backing array")
	}
}
