// Extension benchmarks beyond the paper's tables: the coloring upper bound
// slotted into the Table 5 grid, the two maximum-k-plex solvers, top-k
// retrieval, the standalone oracle baselines, and the graph substrate
// (triangle counting, binary serialisation) that the statistics tooling
// relies on.
package kplex_test

import (
	"bytes"
	"context"
	"runtime"
	"testing"
	"time"

	kplex "repro"
)

// BenchmarkTable5xColorUB adds the coloring-bound column to the Table 5
// ablation (extension experiment; see DESIGN.md).
func BenchmarkTable5xColorUB(b *testing.B) {
	g := benchGraph("social")
	const k, q = 4, 24
	for _, v := range []struct {
		name string
		ub   kplex.UpperBoundStyle
	}{
		{"Ours_color_ub", kplex.UBColor},
		{"Ours", kplex.UBOurs},
	} {
		b.Run(v.name, func(b *testing.B) {
			opts := kplex.NewOptions(k, q)
			opts.UpperBound = v.ub
			for i := 0; i < b.N; i++ {
				runOnce(b, g, opts)
			}
		})
	}
}

// BenchmarkMaximumSolvers compares the binary-search reduction against the
// incumbent branch-and-bound on the same input (extension Table M).
func BenchmarkMaximumSolvers(b *testing.B) {
	g := benchGraph("social")
	const k = 3
	ctx := context.Background()
	b.Run("BinarySearch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kplex.FindMaximumKPlex(ctx, g, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("BnB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kplex.FindMaximumKPlexBnB(ctx, g, k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if p := kplex.GreedyKPlex(g, k); len(p) == 0 {
				b.Fatal("greedy found nothing")
			}
		}
	})
}

// BenchmarkTopK measures the bounded-memory top-N retrieval against the
// full enumeration it wraps.
func BenchmarkTopK(b *testing.B) {
	g := benchGraph("community")
	const k, q, topN = 2, 10, 25
	b.Run("TopK", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := kplex.EnumerateTopK(context.Background(), g, kplex.NewOptions(k, q), topN); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("CountOnly", func(b *testing.B) {
		opts := kplex.NewOptions(k, q)
		for i := 0; i < b.N; i++ {
			runOnce(b, g, opts)
		}
	})
}

// BenchmarkOracleBaselines measures the standalone D2K- and FaPlexen-style
// enumerators against the engine on an input small enough for all three.
func BenchmarkOracleBaselines(b *testing.B) {
	g := kplex.ChungLu(300, 12, 2.2, 77)
	const k, q = 2, 6
	b.Run("D2K", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := kplex.D2KEnumerate(g, k, q); len(got) == 0 {
				b.Fatal("no results")
			}
		}
	})
	b.Run("FaPlexen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := kplex.FaPlexenEnumerate(g, k, q); len(got) == 0 {
				b.Fatal("no results")
			}
		}
	})
	b.Run("Engine", func(b *testing.B) {
		opts := kplex.NewOptions(k, q)
		for i := 0; i < b.N; i++ {
			runOnce(b, g, opts)
		}
	})
}

// BenchmarkSchedulerAblation compares the paper's stage-based work-stealing
// scheduler against the single global queue (the ablation backing the
// Section 6 cache-locality argument).
func BenchmarkSchedulerAblation(b *testing.B) {
	g := benchGraph("large")
	const k, q = 2, 12
	threads := runtime.GOMAXPROCS(0)
	if threads > 16 {
		threads = 16
	}
	for _, v := range []struct {
		name  string
		sched kplex.SchedulerStyle
	}{
		{"Stages", kplex.SchedulerStages},
		{"GlobalQueue", kplex.SchedulerGlobal},
	} {
		b.Run(v.name, func(b *testing.B) {
			opts := kplex.NewOptions(k, q)
			opts.Threads = threads
			opts.TaskTimeout = 100 * time.Microsecond
			opts.Scheduler = v.sched
			for i := 0; i < b.N; i++ {
				runOnce(b, g, opts)
			}
		})
	}
}

// BenchmarkExtendedStats measures the statistics pipeline behind
// cmd/kplexstats (triangle counting dominates).
func BenchmarkExtendedStats(b *testing.B) {
	g := benchGraph("social")
	for i := 0; i < b.N; i++ {
		s := kplex.ComputeExtendedGraphStats(g)
		if s.Triangles == 0 {
			b.Fatal("no triangles in the social graph")
		}
	}
}

// BenchmarkBinaryFormat measures the compact binary graph serialisation.
func BenchmarkBinaryFormat(b *testing.B) {
	g := benchGraph("large")
	var buf bytes.Buffer
	if err := kplex.WriteGraphBinary(&buf, g); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.Run("Write", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := kplex.WriteGraphBinary(&buf, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Read", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := kplex.ReadGraphBinary(bytes.NewReader(data)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
