// Package kplex (module "repro") is the public API of this reproduction of
// "Efficient Enumeration of Large Maximal k-Plexes" (EDBT 2025). It exposes
// the graph substrate, the paper's sequential and parallel branch-and-bound
// enumerator with all its pruning rules, the ListPlex- and FP-style
// baselines, and the synthetic dataset generators used in place of the
// paper's SNAP/LAW graphs.
//
// Quick start:
//
//	g, err := kplex.ReadGraphFile("graph.txt")
//	res, err := kplex.Enumerate(ctx, g, kplex.NewOptions(2, 12))
//	fmt.Println(res.Count)
//
// To collect the plexes themselves, set Options.OnPlex. See examples/ for
// runnable programs.
package kplex

import (
	"context"
	"io"

	"repro/internal/baseline"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/kplex"
)

// Re-exported core types. The aliases keep one import path for users while
// the implementation stays in internal packages.
type (
	// Graph is an immutable undirected simple graph in CSR form.
	Graph = graph.Graph
	// Builder accumulates edges into a Graph.
	Builder = graph.Builder
	// Edge is an undirected edge.
	Edge = graph.Edge
	// Stats summarises a graph (n, m, Δ, D) as in the paper's Table 2.
	GraphStats = graph.Stats
	// Options configures an enumeration run.
	Options = kplex.Options
	// Result is the outcome of an enumeration run.
	Result = kplex.Result
	// SearchStats holds the search counters of a run.
	SearchStats = kplex.Stats
	// UpperBoundStyle selects the include-branch bound.
	UpperBoundStyle = kplex.UpperBoundStyle
	// BranchingStyle selects Ours vs Ours_P branching.
	BranchingStyle = kplex.BranchingStyle
	// PartitionStyle selects the task decomposition.
	PartitionStyle = kplex.PartitionStyle
	// SchedulerStyle selects the parallel work-distribution scheme.
	SchedulerStyle = kplex.SchedulerStyle
	// PlantedConfig parameterises the planted-community generator.
	PlantedConfig = gen.PlantedConfig
	// SBMConfig parameterises the stochastic block model generator.
	SBMConfig = gen.SBMConfig
	// ExtendedGraphStats bundles the Table-2 columns with clustering,
	// assortativity, component and diameter measures.
	ExtendedGraphStats = graph.ExtendedStats
	// GraphFormat identifies an on-disk graph format.
	GraphFormat = graph.Format
	// SeedSet is a bitmask over seed-group ids, used with Options.SkipSeeds
	// to resume a checkpointed enumeration.
	SeedSet = kplex.SeedSet
	// Prepared is the reusable run prologue: the reduced, degeneracy-
	// relabelled working graph for one (graph, K, Q, UseCTCP) cell. See
	// Prepare.
	Prepared = kplex.Prepared
	// BatchQuery is one member of a batched multi-query run: an options
	// cell plus its reporting mode. See EnumerateBatchQueries.
	BatchQuery = kplex.BatchQuery
	// BatchResult is one batch member's answer.
	BatchResult = kplex.BatchResult
	// BatchMode selects what a batch member reports (count / top-k /
	// histogram).
	BatchMode = kplex.BatchMode
)

// Re-exported enumeration constants.
const (
	UBNone             = kplex.UBNone
	UBOurs             = kplex.UBOurs
	UBSortFP           = kplex.UBSortFP
	UBColor            = kplex.UBColor
	BranchRepick       = kplex.BranchRepick
	BranchFaPlexen     = kplex.BranchFaPlexen
	PartitionSubtasks  = kplex.PartitionSubtasks
	PartitionWhole2Hop = kplex.PartitionWhole2Hop
	SchedulerStages    = kplex.SchedulerStages
	SchedulerGlobal    = kplex.SchedulerGlobalQueue
	SchedulerSteal     = kplex.SchedulerSteal
	BatchCount         = kplex.BatchCount
	BatchTopK          = kplex.BatchTopK
	BatchHistogram     = kplex.BatchHistogram
)

// Re-exported graph file formats (see ReadGraphFormatFile).
const (
	FormatEdgeList     = graph.FormatEdgeList
	FormatDIMACS       = graph.FormatDIMACS
	FormatMETIS        = graph.FormatMETIS
	FormatMatrixMarket = graph.FormatMatrixMarket
	FormatBinary       = graph.FormatBinary
	FormatAuto         = graph.FormatUnknown
)

// NewOptions returns the paper's default configuration ("Ours").
func NewOptions(k, q int) Options { return kplex.NewOptions(k, q) }

// BasicOptions returns the "Basic" ablation variant (no R1/R2 rules).
func BasicOptions(k, q int) Options { return kplex.BasicOptions(k, q) }

// OursPOptions returns the Ours_P variant (FaPlexen branching, Eq 4-6).
func OursPOptions(k, q int) Options {
	o := kplex.NewOptions(k, q)
	o.Branching = kplex.BranchFaPlexen
	return o
}

// ListPlexOptions configures the engine as the ListPlex baseline.
func ListPlexOptions(k, q int) Options { return baseline.ListPlexOptions(k, q) }

// FPOptions configures the engine as the FP baseline.
func FPOptions(k, q int) Options { return baseline.FPOptions(k, q) }

// Enumerate lists all maximal k-plexes of g with at least opts.Q vertices.
// It returns the count and search statistics; set opts.OnPlex to receive
// the vertex sets themselves. The context cancels the run early.
func Enumerate(ctx context.Context, g *Graph, opts Options) (Result, error) {
	return kplex.Run(ctx, g, opts)
}

// Prepare computes the reusable prologue of an enumeration run — the
// optional CTCP reduction, the (q-k)-core restriction and the degeneracy
// relabelling — for the (K, Q, UseCTCP) cell of opts. The handle is
// immutable and safe for concurrent reuse; callers issuing many queries
// over one graph should Prepare once and call EnumeratePrepared, which
// skips the O(n+m) prologue entirely.
func Prepare(g *Graph, opts Options) (*Prepared, error) { return kplex.Prepare(g, opts) }

// EnumeratePrepared is Enumerate against a Prepared handle. opts must
// match the handle's K, Q and UseCTCP; execution knobs (threads,
// scheduler, hooks, skip sets) are free to vary per run.
func EnumeratePrepared(ctx context.Context, p *Prepared, opts Options) (Result, error) {
	return kplex.RunPrepared(ctx, p, opts)
}

// EnumerateBatch evaluates a set of queries against one graph, sharing a
// single seed-space traversal among every compatible group of cells: two
// queries with equal K (and UseCTCP) are answered by one walk prepared at
// the loosest (smallest) Q of the group, with each discovered plex fanned
// out to the members whose threshold it meets. A parameter sweep over q
// therefore pays one prologue and one traversal instead of one per cell —
// see the README's "Batched sweeps" section for when this beats the
// prepared-graph cache alone.
//
// Each element of opts is one count-style query; its OnPlex hook (if any)
// receives exactly that member's result set. Per-query knobs that assume
// ownership of the traversal (FirstOnly, SkipSeeds, OnSeedDone,
// OnPlexSeed) are rejected — see Options.ValidateBatchMember. The i-th
// Result is identical to Enumerate(ctx, g, opts[i]) up to the shared
// search counters (Count, MaxPlexSize and delivered plexes match exactly;
// Stats otherwise describe the shared walk). For top-k or histogram
// members, use EnumerateBatchQueries.
func EnumerateBatch(ctx context.Context, g *Graph, opts []Options) ([]Result, error) {
	queries := make([]BatchQuery, len(opts))
	for i, o := range opts {
		queries[i] = BatchQuery{Opts: o, Mode: kplex.BatchCount}
	}
	batch, err := kplex.RunBatch(ctx, g, queries)
	if err != nil {
		return nil, err
	}
	out := make([]Result, len(batch))
	for i, b := range batch {
		out[i] = Result{Count: b.Count, Stats: b.Stats, Elapsed: b.Elapsed}
	}
	return out, nil
}

// EnumerateBatchQueries is the mode-aware batch entry point: members may
// mix count, top-k and histogram reporting (see BatchQuery). Results are
// positionally aligned with queries; members answered by one shared
// traversal report the same BatchResult.Group.
func EnumerateBatchQueries(ctx context.Context, g *Graph, queries []BatchQuery) ([]BatchResult, error) {
	return kplex.RunBatch(ctx, g, queries)
}

// EnumerateAll is a convenience wrapper that collects every maximal k-plex
// into memory. Use only when the result set is known to be small; the
// result sets on the paper's workloads can reach billions of plexes.
func EnumerateAll(ctx context.Context, g *Graph, opts Options) ([][]int, Result, error) {
	var out [][]int
	opts.OnPlex = func(p []int) {
		out = append(out, append([]int(nil), p...))
	}
	opts.Threads = 1 // deterministic order, no locking needed
	res, err := kplex.Run(ctx, g, opts)
	return out, res, err
}

// DefaultStreamBuffer is the EnumerateStream channel capacity used when
// Options.StreamBuffer is zero.
const DefaultStreamBuffer = kplex.DefaultStreamBuffer

// EnumerateStream enumerates like Enumerate but delivers each maximal
// k-plex over a bounded channel as it is found, instead of materialising
// the result set or requiring an OnPlex callback. The channel yields each
// plex as a sorted slice of input-graph vertex ids (the receiver owns the
// slice) and is closed when the run completes or is cancelled; the
// returned *Result is populated before the close, so it may be read once
// the channel is closed (Count, Stats, Elapsed). A synchronous error is
// returned only for invalid options.
//
// Cancellation is two-way: cancelling ctx stops the enumeration engine and
// unblocks any worker parked on a full channel, so abandoning a stream
// (e.g. an HTTP client disconnecting) never leaks goroutines, while a slow
// consumer back-pressures the engine through Options.StreamBuffer rather
// than growing memory. After the channel closes, ctx.Err() distinguishes a
// complete enumeration from a cancelled one. opts.OnPlex must be nil.
func EnumerateStream(ctx context.Context, g *Graph, opts Options) (<-chan []int, *Result, error) {
	h, err := kplex.RunStream(ctx, g, opts)
	if err != nil {
		return nil, nil, err
	}
	return h.C(), h.Result(), nil
}

// FindMaximumKPlex returns a maximum-cardinality k-plex of g among those
// with at least 2k-1 vertices (nil if none exists), via binary search over
// the size threshold with first-hit enumeration queries.
func FindMaximumKPlex(ctx context.Context, g *Graph, k int) ([]int, error) {
	return kplex.FindMaximumKPlex(ctx, g, k)
}

// FindMaximumKPlexBnB solves the same problem as FindMaximumKPlex with a
// single incumbent-pruned branch-and-bound pass (the kPlexS-style
// formulation from the related work). The two solvers return plexes of the
// same size; the tie choice may differ.
func FindMaximumKPlexBnB(ctx context.Context, g *Graph, k int) ([]int, error) {
	return kplex.FindMaximumKPlexBnB(ctx, g, k)
}

// GreedyKPlex returns a heuristic k-plex built greedily along the reverse
// degeneracy ordering; it is the warm start of FindMaximumKPlexBnB.
func GreedyKPlex(g *Graph, k int) []int { return kplex.GreedyKPlex(g, k) }

// EnumerateTopK returns the topN largest maximal k-plexes with at least
// opts.Q vertices, sorted by decreasing size, using bounded memory
// regardless of the total result count.
func EnumerateTopK(ctx context.Context, g *Graph, opts Options, topN int) ([][]int, Result, error) {
	return kplex.EnumerateTopK(ctx, g, opts, topN)
}

// SizeHistogram enumerates and returns the size distribution of the
// maximal k-plexes: hist[s] counts those with exactly s vertices.
func SizeHistogram(ctx context.Context, g *Graph, opts Options) (map[int]int64, Result, error) {
	return kplex.SizeHistogram(ctx, g, opts)
}

// NewSeedSet returns a SeedSet holding the given seed-group ids.
func NewSeedSet(seeds ...int) *SeedSet { return kplex.NewSeedSet(seeds...) }

// SeedSpace returns the number of seed subproblems an enumeration of g
// under opts decomposes into. Seed ids reported by Options.OnSeedDone and
// accepted by Options.SkipSeeds lie in [0, SeedSpace); the value depends
// only on the graph content and the result-defining options, which is what
// makes seed-level checkpoints replayable across restarts.
func SeedSpace(g *Graph, opts Options) (int, error) { return kplex.SeedSpace(g, opts) }

// IsKPlex reports whether P is a k-plex of g.
func IsKPlex(g *Graph, P []int, k int) bool { return kplex.IsKPlex(g, P, k) }

// IsMaximalKPlex reports whether P is a maximal k-plex of g.
func IsMaximalKPlex(g *Graph, P []int, k int) bool { return kplex.IsMaximalKPlex(g, P, k) }

// ReadGraph parses a SNAP-style edge list ("u v" per line, '#' comments).
func ReadGraph(r io.Reader) (*Graph, error) {
	rr, err := graph.ReadEdgeList(r)
	if err != nil {
		return nil, err
	}
	return rr.Graph, nil
}

// ReadGraphFile parses the edge list stored at path.
func ReadGraphFile(path string) (*Graph, error) {
	rr, err := graph.ReadEdgeListFile(path)
	if err != nil {
		return nil, err
	}
	return rr.Graph, nil
}

// WriteGraph writes g as an edge list readable by ReadGraph.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// ReadGraphBinary parses the compact binary format written by
// WriteGraphBinary (varint-delta CSR; ~1-2 bytes per edge on real graphs).
func ReadGraphBinary(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// WriteGraphBinary writes g in the compact binary format.
func WriteGraphBinary(w io.Writer, g *Graph) error { return graph.WriteBinary(w, g) }

// ReadGraphAnyFile loads a graph from path, auto-detecting binary vs text.
func ReadGraphAnyFile(path string) (*Graph, error) {
	rr, err := graph.ReadAnyFile(path)
	if err != nil {
		return nil, err
	}
	return rr.Graph, nil
}

// ComputeGraphStats returns the Table-2 statistics (n, m, Δ, D) for g.
func ComputeGraphStats(g *Graph) GraphStats { return graph.ComputeStats(g) }

// ComputeExtendedGraphStats additionally computes triangles, clustering,
// assortativity, components and an approximate diameter (O(m^{3/2})).
func ComputeExtendedGraphStats(g *Graph) ExtendedGraphStats {
	return graph.ComputeExtendedStats(g)
}

// ReadGraphFormatFile loads a graph from path in the named format;
// FormatAuto detects from the file's first bytes.
func ReadGraphFormatFile(path string, f GraphFormat) (*Graph, error) {
	return graph.ReadFormatFile(path, f)
}

// WriteGraphFormatFile writes g to path in the named format.
func WriteGraphFormatFile(path string, g *Graph, f GraphFormat) error {
	return graph.WriteFormatFile(path, g, f)
}

// Generators, re-exported for the examples and the benchmark suite.

// GNP returns an Erdős–Rényi graph G(n, p).
func GNP(n int, p float64, seed int64) *Graph { return gen.GNP(n, p, seed) }

// BarabasiAlbert returns a preferential-attachment graph.
func BarabasiAlbert(n, m int, seed int64) *Graph { return gen.BarabasiAlbert(n, m, seed) }

// ChungLu returns a power-law random graph with the given average degree
// and exponent gamma.
func ChungLu(n int, avgDeg, gamma float64, seed int64) *Graph {
	return gen.ChungLu(n, avgDeg, gamma, seed)
}

// Planted returns a graph with dense planted communities (each community is
// a k-plex by construction) over a sparse background.
func Planted(cfg PlantedConfig) *Graph { return gen.Planted(cfg) }

// SBM returns a stochastic block model graph.
func SBM(cfg SBMConfig) *Graph { return gen.SBM(cfg) }

// WattsStrogatz returns a small-world graph (ring lattice with rewiring).
func WattsStrogatz(n, k int, beta float64, seed int64) *Graph {
	return gen.WattsStrogatz(n, k, beta, seed)
}

// RandomRegular returns a d-regular graph via the pairing model.
func RandomRegular(n, d int, seed int64) *Graph { return gen.RandomRegular(n, d, seed) }

// NaiveEnumerate is the Bron-Kerbosch oracle (paper's Algorithm 1) without
// any pruning; exponential, for tests and tiny graphs only.
func NaiveEnumerate(g *Graph, k, q int) [][]int { return baseline.NaiveEnumerate(g, k, q) }

// ReverseSearchEnumerate lists maximal k-plexes by reverse search (the
// Berlowitz et al. framework reviewed in the paper's Section 2). Practical
// on small graphs only; maxSolutions caps the traversal (0 = unlimited).
func ReverseSearchEnumerate(g *Graph, k, q, maxSolutions int) ([][]int, error) {
	return baseline.ReverseSearchEnumerate(g, k, q, maxSolutions)
}

// ReduceCTCP applies the kPlexS-style core-truss co-pruning reduction: the
// returned graph (same vertex id space) contains every k-plex with at
// least q vertices of g. Enumerating either graph yields identical results.
func ReduceCTCP(g *Graph, k, q int) *Graph {
	// The internal reduction accepts any CSR source; with a *Graph input
	// it returns either the input itself (no rule fired) or a rebuilt
	// in-memory graph, so the assertion below always holds.
	return graph.Materialize(kplex.ReduceCTCP(g, k, q))
}

// D2KEnumerate lists maximal k-plexes with the standalone D2K-style
// baseline (diameter-2 block decomposition + Bron-Kerbosch, slice sets).
// Independent of the main engine; an oracle for cross-checking.
func D2KEnumerate(g *Graph, k, q int) [][]int { return baseline.D2KEnumerate(g, k, q) }

// FaPlexenEnumerate lists maximal k-plexes with the standalone
// FaPlexen-style baseline (global Eq (4)-(6) branching). Also an
// independent oracle; unlike the others it does not require q >= 2k-1.
func FaPlexenEnumerate(g *Graph, k, q int) [][]int {
	return baseline.FaPlexenEnumerate(g, k, q)
}
