package kplex_test

import (
	"context"
	"fmt"
	"log"
	"sort"

	kplex "repro"
)

// ExampleEnumerate counts the maximal 2-plexes of a small fixed graph.
func ExampleEnumerate() {
	var b kplex.Builder
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 0}} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build(4)
	if err != nil {
		log.Fatal(err)
	}
	res, err := kplex.Enumerate(context.Background(), g, kplex.NewOptions(2, 3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Count)
	// Output: 1
}

// ExampleEnumerateAll retrieves the plexes themselves.
func ExampleEnumerateAll() {
	var b kplex.Builder
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}} {
		b.AddEdge(e[0], e[1])
	}
	g, _ := b.Build(4)
	plexes, _, err := kplex.EnumerateAll(context.Background(), g, kplex.NewOptions(2, 3))
	if err != nil {
		log.Fatal(err)
	}
	// Each plex is sorted; the plex order follows the search (degeneracy
	// order of seed vertices), so sort for a stable listing.
	sort.Slice(plexes, func(i, j int) bool {
		return fmt.Sprint(plexes[i]) < fmt.Sprint(plexes[j])
	})
	for _, p := range plexes {
		fmt.Println(p)
	}
	// Output:
	// [0 1 2]
	// [0 2 3]
	// [1 2 3]
}

// ExampleIsKPlex demonstrates the definition: in a 4-cycle with one chord,
// the whole vertex set is a 2-plex but not a clique.
func ExampleIsKPlex() {
	var b kplex.Builder
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}} {
		b.AddEdge(e[0], e[1])
	}
	g, _ := b.Build(4)
	all := []int{0, 1, 2, 3}
	fmt.Println(kplex.IsKPlex(g, all, 1), kplex.IsKPlex(g, all, 2))
	// Output: false true
}

// ExampleFindMaximumKPlex finds the largest 2-plex of a clique with one
// edge removed (the whole graph: each endpoint of the missing edge misses
// exactly one other member).
func ExampleFindMaximumKPlex() {
	var b kplex.Builder
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if i == 0 && j == 1 {
				continue // drop one edge
			}
			b.AddEdge(i, j)
		}
	}
	g, _ := b.Build(5)
	p, err := kplex.FindMaximumKPlex(context.Background(), g, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(p))
	// Output: 5
}
