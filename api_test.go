package kplex_test

import (
	"context"
	"sort"
	"strings"
	"testing"

	kplex "repro"
)

func TestPublicQuickstartFlow(t *testing.T) {
	var b kplex.Builder
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 0}} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build(4)
	if err != nil {
		t.Fatal(err)
	}
	plexes, res, err := kplex.EnumerateAll(context.Background(), g, kplex.NewOptions(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != int64(len(plexes)) {
		t.Fatalf("count %d != len %d", res.Count, len(plexes))
	}
	// C4 plus one chord (0-2): {0,1,2,3} is a 2-plex (1 and 3 miss each
	// other only), and it is the unique maximal one of size >= 3.
	if len(plexes) != 1 || len(plexes[0]) != 4 {
		t.Fatalf("plexes = %v", plexes)
	}
	if !kplex.IsMaximalKPlex(g, plexes[0], 2) {
		t.Fatal("reported plex is not maximal")
	}
}

func TestPublicReadWriteGraph(t *testing.T) {
	in := "# comment\n0 1\n1 2\n2 0\n"
	g, err := kplex.ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("parsed n=%d m=%d", g.N(), g.M())
	}
	var sb strings.Builder
	if err := kplex.WriteGraph(&sb, g); err != nil {
		t.Fatal(err)
	}
	g2, err := kplex.ReadGraph(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() {
		t.Fatal("round trip lost edges")
	}
}

func TestPublicStats(t *testing.T) {
	g := kplex.GNP(100, 0.2, 1)
	s := kplex.ComputeGraphStats(g)
	if s.N != 100 || s.M == 0 || s.Degeneracy == 0 || s.MaxDegree < s.Degeneracy {
		t.Fatalf("stats = %+v", s)
	}
}

func TestPublicOptionPresetsAgree(t *testing.T) {
	g := kplex.GNP(60, 0.4, 5)
	const k, q = 2, 5
	ref, _, err := kplex.EnumerateAll(context.Background(), g, kplex.NewOptions(k, q))
	if err != nil {
		t.Fatal(err)
	}
	presets := map[string]kplex.Options{
		"basic":    kplex.BasicOptions(k, q),
		"ours_p":   kplex.OursPOptions(k, q),
		"listplex": kplex.ListPlexOptions(k, q),
		"fp":       kplex.FPOptions(k, q),
	}
	for name, o := range presets {
		got, _, err := kplex.EnumerateAll(context.Background(), g, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(ref) {
			t.Fatalf("%s: %d plexes, want %d", name, len(got), len(ref))
		}
	}
	// Oracle agreement on the same graph.
	naive := kplex.NaiveEnumerate(g, k, q)
	if len(naive) != len(ref) {
		t.Fatalf("naive found %d, engine found %d", len(naive), len(ref))
	}
}

func TestPublicBinaryGraphIO(t *testing.T) {
	g := kplex.GNP(120, 0.1, 9)
	var buf strings.Builder
	_ = buf
	var bin bytesBuffer
	if err := kplex.WriteGraphBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	g2, err := kplex.ReadGraphBinary(strings.NewReader(bin.String()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() || g2.N() != g.N() {
		t.Fatal("binary round trip changed the graph")
	}
}

// bytesBuffer is a minimal io.Writer capturing bytes as a string; avoids
// importing bytes just for one test.
type bytesBuffer struct{ data []byte }

func (b *bytesBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}
func (b *bytesBuffer) String() string { return string(b.data) }

func TestPublicReduceCTCPAndOracles(t *testing.T) {
	// CTCP equivalence on a mid-sized graph.
	g := kplex.GNP(60, 0.35, 10)
	const k, q = 2, 5
	ref, _, err := kplex.EnumerateAll(context.Background(), g, kplex.NewOptions(k, q))
	if err != nil {
		t.Fatal(err)
	}
	reduced := kplex.ReduceCTCP(g, k, q)
	got, _, err := kplex.EnumerateAll(context.Background(), reduced, kplex.NewOptions(k, q))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref) {
		t.Fatalf("CTCP changed result count: %d vs %d", len(got), len(ref))
	}

	// The reverse-search oracle is exponential: cross-check it on a graph
	// small enough for its exhaustive completion step.
	small := kplex.GNP(12, 0.5, 10)
	refSmall, _, err := kplex.EnumerateAll(context.Background(), small, kplex.NewOptions(k, q))
	if err != nil {
		t.Fatal(err)
	}
	rev, err := kplex.ReverseSearchEnumerate(small, k, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rev) != len(refSmall) {
		t.Fatalf("reverse search found %d, engine %d", len(rev), len(refSmall))
	}
}

func TestPublicFindMaximum(t *testing.T) {
	g := kplex.GNP(40, 0.4, 11)
	p, err := kplex.FindMaximumKPlex(context.Background(), g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p == nil {
		t.Skip("no 2-plex of size >= 3 in this sample")
	}
	if !kplex.IsMaximalKPlex(g, p, 2) {
		t.Fatal("maximum result is not a maximal k-plex")
	}
	// No maximal k-plex reported by the enumerator may be bigger.
	all, _, err := kplex.EnumerateAll(context.Background(), g, kplex.NewOptions(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range all {
		if len(other) > len(p) {
			t.Fatalf("found %d-vertex plex, FindMaximumKPlex returned %d", len(other), len(p))
		}
	}
}

func TestPublicGenerators(t *testing.T) {
	if g := kplex.BarabasiAlbert(200, 4, 1); g.N() != 200 {
		t.Fatal("ba size")
	}
	if g := kplex.ChungLu(200, 8, 2.5, 1); g.N() != 200 {
		t.Fatal("chunglu size")
	}
	g := kplex.Planted(kplex.PlantedConfig{
		N: 150, BackgroundP: 0.02, Communities: 2, CommSize: 12, DropPerV: 1, Seed: 3,
	})
	if g.N() != 150 {
		t.Fatal("planted size")
	}
	// The planted communities must surface as k-plexes.
	plexes, _, err := kplex.EnumerateAll(context.Background(), g, kplex.NewOptions(2, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(plexes) == 0 {
		t.Fatal("no plexes found in planted graph")
	}
	sizes := make([]int, len(plexes))
	for i, p := range plexes {
		sizes[i] = len(p)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	if sizes[0] < 12 {
		t.Fatalf("largest plex %d smaller than planted community", sizes[0])
	}
}
