package kplex_test

import (
	"context"
	"reflect"
	"testing"

	kplex "repro"
)

// TestPublicBatchFlow exercises the public batch surface end to end: a
// q-sweep through EnumerateBatch must agree element-wise with standalone
// Enumerate calls, and the mode-aware EnumerateBatchQueries must agree
// with EnumerateTopK and SizeHistogram.
func TestPublicBatchFlow(t *testing.T) {
	g := kplex.Planted(kplex.PlantedConfig{
		N: 120, BackgroundP: 0.02, Communities: 4, CommSize: 12,
		DropPerV: 1, Overlap: 2, Seed: 41,
	})
	ctx := context.Background()

	sweep := []kplex.Options{
		kplex.NewOptions(2, 6),
		kplex.NewOptions(2, 8),
		kplex.NewOptions(2, 10),
		kplex.NewOptions(3, 8),
	}
	batch, err := kplex.EnumerateBatch(ctx, g, sweep)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(sweep) {
		t.Fatalf("got %d results for %d queries", len(batch), len(sweep))
	}
	for i, opts := range sweep {
		res, err := kplex.Enumerate(ctx, g, opts)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Count != res.Count {
			t.Errorf("cell %d (k=%d q=%d): batch count %d, standalone %d",
				i, opts.K, opts.Q, batch[i].Count, res.Count)
		}
		if batch[i].Stats.MaxPlexSize != res.Stats.MaxPlexSize {
			t.Errorf("cell %d: max size %d, standalone %d",
				i, batch[i].Stats.MaxPlexSize, res.Stats.MaxPlexSize)
		}
	}

	queries := []kplex.BatchQuery{
		{Opts: kplex.NewOptions(2, 6), Mode: kplex.BatchTopK, TopN: 3},
		{Opts: kplex.NewOptions(2, 8), Mode: kplex.BatchHistogram},
	}
	results, err := kplex.EnumerateBatchQueries(ctx, g, queries)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Group != results[1].Group {
		t.Errorf("equal-k members did not share a traversal: groups %d and %d",
			results[0].Group, results[1].Group)
	}
	topk, _, err := kplex.EnumerateTopK(ctx, g, kplex.NewOptions(2, 6), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(results[0].TopK, topk) {
		t.Errorf("batch topk %v, standalone %v", results[0].TopK, topk)
	}
	hist, _, err := kplex.SizeHistogram(ctx, g, kplex.NewOptions(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(results[1].Histogram, hist) {
		t.Errorf("batch histogram %v, standalone %v", results[1].Histogram, hist)
	}

	// The batch-member guard is reachable from the public surface.
	bad := kplex.NewOptions(2, 6)
	bad.FirstOnly = true
	if _, err := kplex.EnumerateBatch(ctx, g, []kplex.Options{bad}); err == nil {
		t.Error("EnumerateBatch accepted a FirstOnly member")
	}
}
