package kplex_test

import (
	"context"
	"fmt"
	"log"

	kplex "repro"
)

// ExampleEnumerateTopK keeps only the largest results of an enumeration.
func ExampleEnumerateTopK() {
	// Two overlapping triangles sharing an edge: K4 minus one edge is the
	// largest 2-plex.
	var b kplex.Builder
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {1, 3}, {2, 3}} {
		b.AddEdge(e[0], e[1])
	}
	g, _ := b.Build(4)
	top, res, err := kplex.EnumerateTopK(context.Background(), g, kplex.NewOptions(2, 3), 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Count, top[0])
	// Output: 1 [0 1 2 3]
}

// ExampleGreedyKPlex shows the warm-start heuristic on a clique: greedy
// recovers the whole graph since every addition keeps the set a k-plex.
func ExampleGreedyKPlex() {
	var b kplex.Builder
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(i, j)
		}
	}
	g, _ := b.Build(6)
	fmt.Println(len(kplex.GreedyKPlex(g, 2)))
	// Output: 6
}

// ExampleFindMaximumKPlexBnB matches the binary-search solver.
func ExampleFindMaximumKPlexBnB() {
	var b kplex.Builder
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if i == 0 && j == 1 {
				continue // drop one edge: still a 2-plex overall
			}
			b.AddEdge(i, j)
		}
	}
	g, _ := b.Build(5)
	p, err := kplex.FindMaximumKPlexBnB(context.Background(), g, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(p))
	// Output: 5
}

// ExampleD2KEnumerate cross-checks the standalone baseline on a triangle.
func ExampleD2KEnumerate() {
	var b kplex.Builder
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		b.AddEdge(e[0], e[1])
	}
	g, _ := b.Build(3)
	fmt.Println(kplex.D2KEnumerate(g, 2, 3))
	// Output: [[0 1 2]]
}

// ExampleFaPlexenEnumerate runs the second standalone baseline; unlike the
// seed-decomposed enumerators it accepts q below 2k-1.
func ExampleFaPlexenEnumerate() {
	var b kplex.Builder
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g, _ := b.Build(3)
	// The path 0-1-2 is a maximal 2-plex of size 3 (ends miss one edge).
	fmt.Println(kplex.FaPlexenEnumerate(g, 2, 2))
	// Output: [[0 1 2]]
}

// ExampleComputeExtendedGraphStats reports the clustering statistics of a
// triangle with a pendant edge.
func ExampleComputeExtendedGraphStats() {
	var b kplex.Builder
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}} {
		b.AddEdge(e[0], e[1])
	}
	g, _ := b.Build(4)
	s := kplex.ComputeExtendedGraphStats(g)
	fmt.Printf("triangles=%d transitivity=%.1f components=%d\n",
		s.Triangles, s.Transitivity, s.Components)
	// Output: triangles=1 transitivity=0.6 components=1
}
