package kplex_test

// Public-API coverage of EnumerateStream: the stream must reproduce
// EnumerateAll exactly and honour cancellation, through the root package's
// re-exports alone.

import (
	"context"
	"testing"

	kplex "repro"
	"repro/internal/sink"
)

func TestPublicEnumerateStream(t *testing.T) {
	g := kplex.Planted(kplex.PlantedConfig{
		N: 100, BackgroundP: 0.02, Communities: 5, CommSize: 10,
		DropPerV: 1, Overlap: 2, Seed: 7,
	})
	const k, q = 2, 6
	want, wantRes, err := kplex.EnumerateAll(context.Background(), g, kplex.NewOptions(k, q))
	if err != nil {
		t.Fatal(err)
	}

	opts := kplex.NewOptions(k, q)
	opts.Threads = 4
	opts.Scheduler = kplex.SchedulerSteal
	ch, res, err := kplex.EnumerateStream(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	var got [][]int
	for p := range ch {
		got = append(got, p)
	}
	if !sink.Equal(got, want) {
		t.Errorf("stream yielded %d plexes, EnumerateAll %d; sets differ", len(got), len(want))
	}
	if res.Count != wantRes.Count {
		t.Errorf("stream Result.Count = %d, want %d", res.Count, wantRes.Count)
	}
}

func TestPublicEnumerateStreamCancel(t *testing.T) {
	g := kplex.ChungLu(200, 12, 2.3, 46)
	ctx, cancel := context.WithCancel(context.Background())
	opts := kplex.NewOptions(3, 8)
	opts.StreamBuffer = 2
	ch, _, err := kplex.EnumerateStream(ctx, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range ch {
		n++
		if n == 5 {
			cancel()
		}
	}
	if ctx.Err() == nil {
		t.Error("stream drained fully before cancellation took effect")
	}
	cancel()
}
