// Command kplex enumerates all maximal k-plexes with at least q vertices
// from an edge-list graph, using the paper's branch-and-bound algorithm.
//
// Usage:
//
//	kplex -k 2 -q 12 graph.txt            # count only
//	kplex -k 2 -q 12 -print graph.txt     # print each k-plex
//	kplex -k 2 -q 12 -o out.bin graph.txt # stream results to a file
//	kplex -k 3 -q 20 -threads 16 -timeout 100us graph.txt
//	kplex -algo listplex ...              # run a baseline instead
//
// Result files written with -o use the text format unless the name ends in
// .bin (the delta-varint binary format); either can be checked or compared
// with cmd/kplexverify.
//
// The input is either a whitespace-separated edge list with '#' comments
// (the SNAP format; output vertex ids use the input's labels) or the
// compact binary format produced by gengraph -binary.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"time"

	"repro/internal/baseline"
	"repro/internal/graph"
	"repro/internal/kplex"
	"repro/internal/sink"
)

func main() {
	var (
		k       = flag.Int("k", 2, "k-plex parameter (each vertex may miss k in-set links, itself included)")
		q       = flag.Int("q", 0, "minimum k-plex size (default 2k-1)")
		threads = flag.Int("threads", 1, "worker threads")
		timeout = flag.Duration("timeout", 0, "task-split timeout τ_time for parallel runs (e.g. 100us; 0 = off)")
		sched   = flag.String("sched", "stages", "parallel scheduler: stages | global | steal")
		algo    = flag.String("algo", "ours", "algorithm: ours | ours_p | basic | listplex | fp")
		doPrint = flag.Bool("print", false, "print every maximal k-plex (one per line)")
		outPath = flag.String("o", "", "stream results to this file (.bin suffix = binary format)")
		stats   = flag.Bool("stats", false, "print search statistics")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: kplex [flags] <edge-list file>")
		flag.Usage()
		os.Exit(2)
	}
	if *q == 0 {
		*q = 2**k - 1
	}

	rr, err := graph.ReadAnyFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	g := rr.Graph
	s := graph.ComputeStats(g)
	fmt.Fprintf(os.Stderr, "loaded %s: %s\n", flag.Arg(0), s)

	var opts kplex.Options
	switch *algo {
	case "ours":
		opts = kplex.NewOptions(*k, *q)
	case "ours_p":
		opts = kplex.NewOptions(*k, *q)
		opts.Branching = kplex.BranchFaPlexen
	case "basic":
		opts = kplex.BasicOptions(*k, *q)
	case "listplex":
		opts = baseline.ListPlexOptions(*k, *q)
	case "fp":
		opts = baseline.FPOptions(*k, *q)
	default:
		fatal(fmt.Errorf("unknown -algo %q", *algo))
	}
	opts.Threads = *threads
	opts.TaskTimeout = *timeout
	switch *sched {
	case "stages":
		opts.Scheduler = kplex.SchedulerStages
	case "global":
		opts.Scheduler = kplex.SchedulerGlobalQueue
	case "steal":
		opts.Scheduler = kplex.SchedulerSteal
	default:
		fatal(fmt.Errorf("unknown -sched %q (have stages, global, steal)", *sched))
	}

	var mu sync.Mutex
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	var sinkW *sink.Writer
	var sinkFile *os.File
	if *outPath != "" {
		sinkFile, err = os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		if strings.HasSuffix(*outPath, ".bin") {
			sinkW, err = sink.NewBinaryWriter(sinkFile)
			if err != nil {
				fatal(err)
			}
		} else {
			sinkW = sink.NewTextWriter(sinkFile)
		}
	}

	if *doPrint || sinkW != nil {
		labelBuf := make([]int, 0, 64)
		opts.OnPlex = func(p []int) {
			mu.Lock()
			defer mu.Unlock()
			// Translate back to the input file's vertex labels. Labels are
			// assigned in ascending order, so the translation preserves the
			// sortedness the sink requires.
			labelBuf = labelBuf[:0]
			for _, v := range p {
				labelBuf = append(labelBuf, int(rr.OrigID[v]))
			}
			if sinkW != nil {
				if err := sinkW.Write(labelBuf); err != nil {
					fatal(err)
				}
			}
			if *doPrint {
				for i, v := range labelBuf {
					if i > 0 {
						fmt.Fprint(out, " ")
					}
					fmt.Fprint(out, v)
				}
				fmt.Fprintln(out)
			}
		}
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	start := time.Now()
	res, err := kplex.Run(ctx, g, opts)
	if err != nil {
		out.Flush()
		fmt.Fprintf(os.Stderr, "interrupted after %v: %v\n", time.Since(start), err)
		os.Exit(1)
	}
	if sinkW != nil {
		if err := sinkW.Close(); err != nil {
			fatal(err)
		}
		if err := sinkFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *outPath)
	}
	fmt.Fprintf(os.Stderr, "%d maximal %d-plexes with >= %d vertices in %v\n",
		res.Count, *k, *q, res.Elapsed)
	if *stats {
		st := res.Stats
		fmt.Fprintf(os.Stderr, "seeds=%d tasks=%d tasksPrunedR1=%d branches=%d ubPruned=%d collapses=%d repicks=%d splits=%d steals=%d stealMisses=%d\n",
			st.Seeds, st.Tasks, st.TasksPrunedR1, st.Branches, st.UBPruned, st.Collapses, st.Repicks, st.Splits, st.Steals, st.StealMisses)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kplex:", err)
	os.Exit(1)
}
