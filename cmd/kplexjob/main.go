// Command kplexjob is the client for kplexd's durable background jobs: it
// submits long-running enumerations, watches their checkpointed progress,
// and fetches results — against a running kplexd, or fully in-process with
// -local (no server needed; useful for scripted batch runs, and because
// the jobs directory is durable, an interrupted local run resumes from its
// last checkpoint when reinvoked).
//
// With -cluster the same commands drive a coordinator kplexd's
// distributed jobs (/cluster/jobs) instead: submit fans the enumeration
// out across the coordinator's registered workers, wait follows
// range-level progress, and result fetches the merged aggregate — which
// is byte-identical to what a single-node run of the same query returns.
//
// Usage:
//
//	kplexjob [-addr URL [-cluster] | -local -jobs DIR [-data DIR]] <command> [flags]
//
// Commands:
//
//	submit  -graph G -k K -q Q [-topn N] [-threads T] [-scheduler S] [-priority P] [-ranges R] [-wait]
//	list
//	status  <id>
//	wait    <id>
//	result  <id>
//	cancel  <id>
//	delete  <id>
//	trace   <trace-id>   fetch one finished trace from the server's ring
//	                     (a job manifest's traceId field names it)
//
// Examples:
//
//	kplexjob -addr http://localhost:8080 submit -graph corpus:planted-a -k 2 -q 6 -wait
//	kplexjob -local -jobs ./jobs -data ./graphs submit -graph web.txt -k 2 -q 12
//	kplexjob -cluster submit -graph corpus:planted-a -k 2 -q 6 -ranges 8 -wait
//	kplexjob wait j4f2a81c09d1b
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/graph"
	"repro/internal/jobs"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "kplexjob:", err)
		os.Exit(1)
	}
}

// backend abstracts "talk to kplexd" vs "run the manager in-process" vs
// "talk to a cluster coordinator". list/status return `any` because the
// cluster backend's views carry range-level fields the jobs types don't;
// the commands only print them. wait reports the terminal state plus the
// job's own error text; result is *jobs.Result everywhere because the
// coordinator merges into the same result shape single-node jobs use.
type backend interface {
	submit(spec jobs.Spec) (id string, man any, err error)
	list() (any, error)
	status(id string) (any, error)
	wait(id string) (jobs.State, string, error)
	result(id string) (*jobs.Result, error)
	cancel(id string) error
	remove(id string) error
	close()
}

func run() error {
	var (
		addr    = flag.String("addr", "http://localhost:8080", "kplexd base URL")
		local   = flag.Bool("local", false, "run the job manager in-process instead of talking to a kplexd")
		jobsDir = flag.String("jobs", "kplex-jobs", "jobs directory (-local only)")
		dataDir = flag.String("data", "", "graph data directory (-local only; empty: corpus graphs only)")
		workers = flag.Int("workers", 1, "concurrent jobs (-local only)")
		clust   = flag.Bool("cluster", false, "drive the coordinator's distributed jobs (/cluster/jobs) instead of single-node jobs")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: kplexjob [-addr URL [-cluster] | -local -jobs DIR [-data DIR]] <submit|list|status|wait|result|cancel|delete|trace> [flags]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		return errors.New("missing command")
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]

	if *clust && *local {
		return errors.New("-cluster needs a running coordinator kplexd; it cannot combine with -local")
	}

	var b backend
	if *local {
		m, err := jobs.Open(jobs.Config{
			Dir:     *jobsDir,
			Workers: *workers,
			Load:    localLoader(*dataDir),
			Logf: func(format string, a ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", a...)
			},
		})
		if err != nil {
			return err
		}
		b = &localBackend{m: m}
	} else if *clust {
		b = &clusterBackend{h: &httpBackend{base: strings.TrimRight(*addr, "/")}}
	} else {
		b = &httpBackend{base: strings.TrimRight(*addr, "/")}
	}
	defer b.close()

	switch cmd {
	case "submit":
		return cmdSubmit(b, *local, args)
	case "list":
		views, err := b.list()
		if err != nil {
			return err
		}
		return printJSON(views)
	case "status":
		id, err := oneID(args)
		if err != nil {
			return err
		}
		v, err := b.status(id)
		if err != nil {
			return err
		}
		return printJSON(v)
	case "wait":
		id, err := oneID(args)
		if err != nil {
			return err
		}
		return waitAndReport(b, id)
	case "result":
		id, err := oneID(args)
		if err != nil {
			return err
		}
		res, err := b.result(id)
		if err != nil {
			return err
		}
		return printJSON(res)
	case "cancel":
		id, err := oneID(args)
		if err != nil {
			return err
		}
		if err := b.cancel(id); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "cancelled", id)
		return nil
	case "delete":
		id, err := oneID(args)
		if err != nil {
			return err
		}
		if err := b.remove(id); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "deleted", id)
		return nil
	case "trace":
		if len(args) != 1 {
			return errors.New("expected exactly one trace id")
		}
		if *local {
			return errors.New("trace requires a running kplexd (-addr): traces live in the server's ring")
		}
		// Jobs and distributed jobs pin their trace id in the manifest
		// (traceId); interactive queries return theirs in X-Trace-Id.
		h := &httpBackend{base: strings.TrimRight(*addr, "/")}
		var td json.RawMessage
		if err := h.do(http.MethodGet, "/debug/traces/"+args[0], nil, &td); err != nil {
			return err
		}
		var v any
		if err := json.Unmarshal(td, &v); err != nil {
			return err
		}
		return printJSON(v)
	default:
		flag.Usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func oneID(args []string) (string, error) {
	if len(args) != 1 {
		return "", errors.New("expected exactly one job id")
	}
	return args[0], nil
}

func printJSON(v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(data))
	return nil
}

func cmdSubmit(b backend, local bool, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ContinueOnError)
	var spec jobs.Spec
	fs.StringVar(&spec.Graph, "graph", "", "graph name (server path or corpus:<name>)")
	fs.IntVar(&spec.K, "k", 0, "k-plex parameter")
	fs.IntVar(&spec.Q, "q", 0, "minimum plex size")
	fs.IntVar(&spec.TopN, "topn", 0, "largest plexes kept (default 10)")
	fs.IntVar(&spec.Threads, "threads", 0, "engine threads (0: server default)")
	fs.StringVar(&spec.Scheduler, "scheduler", "", "stages | global-queue | steal")
	fs.IntVar(&spec.Priority, "priority", 0, "higher runs first")
	items := fs.String("items", "", `batch job: comma-separated "k:q[:topn]" cells (leave -k/-q/-topn unset); cells with equal k share one traversal`)
	ranges := fs.Int("ranges", 0, "seed ranges the job is split into (-cluster only; default: coordinator's ranges-per-worker × workers)")
	wait := fs.Bool("wait", false, "watch progress and print the result")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *items != "" {
		var err error
		if spec.Items, err = parseItems(*items); err != nil {
			return err
		}
	}
	if cb, ok := b.(*clusterBackend); ok {
		cb.ranges = *ranges
	} else if *ranges != 0 {
		return errors.New("-ranges applies only with -cluster")
	}
	id, man, err := b.submit(spec)
	if err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "submitted", id)
	// A local manager dies with this process, so submitting without
	// waiting would leave the job queued forever; always wait.
	if !*wait && !local {
		return printJSON(man)
	}
	return waitAndReport(b, id)
}

// parseItems decodes the -items flag: comma-separated "k:q" or "k:q:topn"
// cells.
func parseItems(s string) ([]jobs.SpecItem, error) {
	var items []jobs.SpecItem
	for _, cell := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(cell), ":")
		if len(parts) != 2 && len(parts) != 3 {
			return nil, fmt.Errorf("bad item %q: want k:q or k:q:topn", cell)
		}
		var it jobs.SpecItem
		var err error
		if it.K, err = strconv.Atoi(parts[0]); err != nil {
			return nil, fmt.Errorf("bad item %q: %v", cell, err)
		}
		if it.Q, err = strconv.Atoi(parts[1]); err != nil {
			return nil, fmt.Errorf("bad item %q: %v", cell, err)
		}
		if len(parts) == 3 {
			if it.TopN, err = strconv.Atoi(parts[2]); err != nil {
				return nil, fmt.Errorf("bad item %q: %v", cell, err)
			}
		}
		items = append(items, it)
	}
	return items, nil
}

func waitAndReport(b backend, id string) error {
	state, errText, err := b.wait(id)
	if err != nil {
		return err
	}
	if state != jobs.StateDone {
		return fmt.Errorf("job %s ended %s: %s", id, state, errText)
	}
	res, err := b.result(id)
	if err != nil {
		return err
	}
	return printJSON(res)
}

// localLoader resolves graph names the same way kplexd does ("corpus:*"
// builtins, otherwise files under dataDir, *.kpg served mmap-backed) and
// stamps the content digest the checkpoint identity check needs — read
// from the store header when the graph is store-backed, never rehashed.
func localLoader(dataDir string) jobs.GraphLoader {
	load := server.NewLoader(dataDir, nil)
	return func(name string) (graph.CSR, string, func(), error) {
		g, err := load(name)
		if err != nil {
			return nil, "", nil, err
		}
		return g, graph.DigestHexOf(g), func() {}, nil
	}
}

// localBackend drives an in-process manager.
type localBackend struct{ m *jobs.Manager }

func (l *localBackend) submit(spec jobs.Spec) (string, any, error) {
	man, err := l.m.Submit(spec)
	if err != nil {
		return "", nil, err
	}
	return man.ID, man, nil
}
func (l *localBackend) list() (any, error)                     { return l.m.List(), nil }
func (l *localBackend) status(id string) (any, error)          { return l.m.Get(id) }
func (l *localBackend) result(id string) (*jobs.Result, error) { return l.m.Result(id) }
func (l *localBackend) cancel(id string) error                 { return l.m.Cancel(id) }
func (l *localBackend) remove(id string) error {
	if err := l.m.Cancel(id); err == nil {
		return nil
	} else if !errors.Is(err, jobs.ErrNotActive) {
		return err
	}
	return l.m.Delete(id)
}
func (l *localBackend) close() { l.m.Close() }

func (l *localBackend) wait(id string) (jobs.State, string, error) {
	ch, stop, err := l.m.Subscribe(id)
	if err != nil {
		return "", "", err
	}
	defer stop()
	for p := range ch {
		reportProgress(p)
	}
	v, err := l.m.Get(id)
	if err != nil {
		return "", "", err
	}
	return v.State, v.Error, nil
}

// httpBackend talks to a running kplexd.
type httpBackend struct{ base string }

func (h *httpBackend) close() {}

// do runs one request and decodes the JSON answer (or the error body).
func (h *httpBackend) do(method, path string, body io.Reader, out any) error {
	req, err := http.NewRequest(method, h.base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 400 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s %s: %s", method, path, e.Error)
		}
		return fmt.Errorf("%s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

func (h *httpBackend) submit(spec jobs.Spec) (string, any, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", nil, err
	}
	var man jobs.Manifest
	if err := h.do(http.MethodPost, "/jobs", strings.NewReader(string(body)), &man); err != nil {
		return "", nil, err
	}
	return man.ID, &man, nil
}

func (h *httpBackend) list() (any, error) {
	var views []jobs.View
	return views, h.do(http.MethodGet, "/jobs", nil, &views)
}

func (h *httpBackend) status(id string) (any, error) { return h.view(id) }

func (h *httpBackend) view(id string) (*jobs.View, error) {
	var v jobs.View
	if err := h.do(http.MethodGet, "/jobs/"+id, nil, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

func (h *httpBackend) result(id string) (*jobs.Result, error) {
	var res jobs.Result
	if err := h.do(http.MethodGet, "/jobs/"+id+"/result", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

func (h *httpBackend) cancel(id string) error {
	// The dedicated endpoint refuses terminal jobs; DELETE would purge
	// them (and their results) instead.
	return h.do(http.MethodPost, "/jobs/"+id+"/cancel", nil, nil)
}

func (h *httpBackend) remove(id string) error {
	// DELETE cancels active jobs; a second DELETE purges the terminal one.
	return h.do(http.MethodDelete, "/jobs/"+id, nil, nil)
}

// wait follows the NDJSON events feed; if the feed drops (kplexd restart),
// it falls back to polling until the job is terminal.
func (h *httpBackend) wait(id string) (jobs.State, string, error) {
	for {
		resp, err := http.Get(h.base + "/jobs/" + id + "/events")
		if err != nil {
			return "", "", err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			// 404 etc.: let the status fetch produce the error.
			v, err := h.view(id)
			if err != nil {
				return "", "", err
			}
			return v.State, v.Error, nil
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || line == "{}" {
				continue
			}
			var p jobs.Progress
			if json.Unmarshal([]byte(line), &p) == nil {
				reportProgress(p)
			}
		}
		resp.Body.Close()
		v, err := h.view(id)
		if err != nil {
			return "", "", err
		}
		switch v.State {
		case jobs.StateDone, jobs.StateFailed, jobs.StateCancelled:
			return v.State, v.Error, nil
		}
		// Feed ended but the job is still live (server restarting and
		// resuming it); re-attach after a beat.
		time.Sleep(time.Second)
	}
}

// clusterBackend drives a coordinator kplexd's distributed jobs: same
// verbs, /cluster/jobs paths, range-level progress.
type clusterBackend struct {
	h      *httpBackend
	ranges int // submit's -ranges (0: coordinator default)
}

func (c *clusterBackend) close() {}

func (c *clusterBackend) submit(spec jobs.Spec) (string, any, error) {
	if spec.Priority != 0 || len(spec.Items) != 0 {
		return "", nil, errors.New("-priority and -items do not apply to distributed jobs")
	}
	body, err := json.Marshal(cluster.Spec{
		Graph:     spec.Graph,
		K:         spec.K,
		Q:         spec.Q,
		TopN:      spec.TopN,
		Ranges:    c.ranges,
		Threads:   spec.Threads,
		Scheduler: spec.Scheduler,
	})
	if err != nil {
		return "", nil, err
	}
	var man cluster.Manifest
	if err := c.h.do(http.MethodPost, "/cluster/jobs", strings.NewReader(string(body)), &man); err != nil {
		return "", nil, err
	}
	return man.ID, &man, nil
}

func (c *clusterBackend) list() (any, error) {
	var views []cluster.View
	return views, c.h.do(http.MethodGet, "/cluster/jobs", nil, &views)
}

func (c *clusterBackend) status(id string) (any, error) { return c.view(id) }

func (c *clusterBackend) view(id string) (*cluster.View, error) {
	var v cluster.View
	if err := c.h.do(http.MethodGet, "/cluster/jobs/"+id, nil, &v); err != nil {
		return nil, err
	}
	return &v, nil
}

func (c *clusterBackend) result(id string) (*jobs.Result, error) {
	var res jobs.Result
	if err := c.h.do(http.MethodGet, "/cluster/jobs/"+id+"/result", nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

func (c *clusterBackend) cancel(id string) error {
	return c.h.do(http.MethodPost, "/cluster/jobs/"+id+"/cancel", nil, nil)
}

func (c *clusterBackend) remove(id string) error {
	return c.h.do(http.MethodDelete, "/cluster/jobs/"+id, nil, nil)
}

// wait mirrors httpBackend.wait over the coordinator's events feed. A
// coordinator restart parks running jobs as checkpointed and resumes
// them on reopen, so a dropped feed re-attaches rather than giving up.
func (c *clusterBackend) wait(id string) (jobs.State, string, error) {
	for {
		resp, err := http.Get(c.h.base + "/cluster/jobs/" + id + "/events")
		if err != nil {
			return "", "", err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			v, err := c.view(id)
			if err != nil {
				return "", "", err
			}
			return v.State, v.Error, nil
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || line == "{}" {
				continue
			}
			var p cluster.Progress
			if json.Unmarshal([]byte(line), &p) == nil {
				reportClusterProgress(p)
			}
		}
		resp.Body.Close()
		v, err := c.view(id)
		if err != nil {
			return "", "", err
		}
		if v.State.Terminal() {
			return v.State, v.Error, nil
		}
		time.Sleep(time.Second)
	}
}

func reportClusterProgress(p cluster.Progress) {
	extra := ""
	if p.Reassigned > 0 {
		extra += fmt.Sprintf("  reassigned %d", p.Reassigned)
	}
	if p.Stolen > 0 {
		extra += fmt.Sprintf("  stolen %d", p.Stolen)
	}
	fmt.Fprintf(os.Stderr, "%-12s ranges %d/%d  seeds %d/%d  leased %d%s\n",
		p.State, p.RangesDone, p.RangesTotal, p.SeedsDone, p.TotalSeeds, p.Leased, extra)
}

func reportProgress(p jobs.Progress) {
	eta := ""
	if p.ETAMS > 0 {
		eta = fmt.Sprintf(" eta=%s", (time.Duration(p.ETAMS) * time.Millisecond).Round(time.Second))
	}
	fmt.Fprintf(os.Stderr, "%-12s seeds %d/%d  plexes %d  checkpoints %d%s\n",
		p.State, p.SeedsDone, p.TotalSeeds, p.Plexes, p.Checkpoints, eta)
}
