// Command calibrate sweeps q for each benchmark dataset and prints the
// result count and running time of the default algorithm, used to pick the
// (k, q) grids in internal/bench/datasets.go so that every experiment row
// has a non-trivial result set and a bounded runtime.
//
// Usage:
//
//	calibrate                       # sweep the whole suite
//	calibrate -dataset jazz-syn     # one dataset
//	calibrate -k 3 -budget 10s     # cap per-cell time
package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/graph"
	"repro/internal/kplex"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "restrict to one dataset")
		kFlag   = flag.Int("k", 0, "restrict to one k (default: 2, 3, 4)")
		budget  = flag.Duration("budget", 15*time.Second, "per-cell time budget")
		class   = flag.String("class", "", "restrict to a class: small | medium | large")
	)
	flag.Parse()

	ks := []int{2, 3, 4}
	if *kFlag != 0 {
		ks = []int{*kFlag}
	}
	for _, d := range bench.Suite() {
		if *dataset != "" && d.Name != *dataset {
			continue
		}
		if *class != "" && string(d.Class) != *class {
			continue
		}
		g := d.Build()
		fmt.Printf("== %s: %s\n", d.Name, graph.ComputeStats(g))
		for _, k := range ks {
			// Descend from a high q: cheap empty cells first, stop at the
			// first cell that exceeds the budget. This avoids burning the
			// full budget on every under-threshold q.
			qMin := 2*k - 1
			started := false
			for q := 60; q >= qMin; q -= 2 {
				ctx, cancel := context.WithTimeout(context.Background(), *budget)
				opts := kplex.NewOptions(k, q)
				res, err := kplex.Run(ctx, g, opts)
				cancel()
				status := ""
				if err != nil {
					status = " TIMEOUT"
				}
				if !started && err == nil && res.Count == 0 {
					continue // still above the largest plex; skip silently
				}
				started = true
				fmt.Printf("  k=%d q=%-3d count=%-12d time=%-10v%s\n",
					k, q, res.Count, res.Elapsed.Round(time.Millisecond), status)
				if err != nil || res.Elapsed > *budget/2 {
					break
				}
			}
		}
	}
}
