// Command kplexbench regenerates the tables and figures of the paper's
// evaluation section on the synthetic dataset suite.
//
// Usage:
//
//	kplexbench -all            # every table and figure (slow)
//	kplexbench -table 3        # one table (2-7)
//	kplexbench -figure 8       # one figure (7, 8, 9, 13)
//	kplexbench -ext ubcolor    # extension: coloring-bound ablation
//	kplexbench -ext maximum    # extension: maximum k-plex solvers
//	kplexbench -quick ...      # representative subset, ~1 minute total
//	kplexbench -threads 8 ...  # worker count for the parallel experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		table   = flag.Int("table", 0, "regenerate one table (2-7)")
		figure  = flag.Int("figure", 0, "regenerate one figure (7, 8, 9, 13)")
		ext     = flag.String("ext", "", "extension experiment: ubcolor or maximum")
		all     = flag.Bool("all", false, "regenerate everything")
		quick   = flag.Bool("quick", false, "representative subset only")
		threads = flag.Int("threads", 0, "parallel worker count (default min(16, CPUs))")
	)
	flag.Parse()

	cfg := &bench.Config{Quick: *quick, Threads: *threads, Out: os.Stdout}

	type job struct {
		name string
		run  func() error
	}
	jobs := map[string]job{
		"table2":   {"Table 2", cfg.Table2},
		"table3":   {"Table 3", cfg.Table3},
		"table4":   {"Table 4", cfg.Table4},
		"table5":   {"Table 5", cfg.Table5},
		"table6":   {"Table 6", cfg.Table6},
		"table7":   {"Table 7", cfg.Table7},
		"figure7":  {"Figure 7", cfg.Figure7},
		"figure8":  {"Figure 8", cfg.Figure8},
		"figure9":  {"Figure 9", cfg.Figure9},
		"figure13": {"Figure 13", cfg.Figure13},
		"figure14": {"Figure 14", cfg.Figure14},
		"figure15": {"Figure 15", cfg.Figure15},
		"ubcolor":  {"Table 5x (extension)", cfg.TableUBColor},
		"maximum":  {"Table M (extension)", cfg.TableMaximum},
	}
	order := []string{
		"table2", "table3", "figure7", "table4", "figure8",
		"table5", "table6", "figure9", "figure13", "figure14",
		"figure15", "table7", "ubcolor", "maximum",
	}

	var selected []string
	switch {
	case *all:
		selected = order
	case *table != 0:
		key := fmt.Sprintf("table%d", *table)
		if _, ok := jobs[key]; !ok {
			fmt.Fprintf(os.Stderr, "kplexbench: no such table %d (have 2-7)\n", *table)
			os.Exit(2)
		}
		selected = []string{key}
	case *figure != 0:
		key := fmt.Sprintf("figure%d", *figure)
		if _, ok := jobs[key]; !ok {
			fmt.Fprintf(os.Stderr, "kplexbench: no such figure %d (have 7, 8, 9, 13, 14, 15)\n", *figure)
			os.Exit(2)
		}
		selected = []string{key}
	case *ext != "":
		if _, ok := jobs[*ext]; !ok || (*ext != "ubcolor" && *ext != "maximum") {
			fmt.Fprintf(os.Stderr, "kplexbench: no such extension %q (have ubcolor, maximum)\n", *ext)
			os.Exit(2)
		}
		selected = []string{*ext}
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, key := range selected {
		if err := jobs[key].run(); err != nil {
			fmt.Fprintf(os.Stderr, "kplexbench: %s: %v\n", jobs[key].name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
