// Command kplexbench regenerates the tables and figures of the paper's
// evaluation section on the synthetic dataset suite.
//
// Usage:
//
//	kplexbench -all            # every table and figure (slow)
//	kplexbench -table 3        # one table (2-7)
//	kplexbench -figure 8       # one figure (7, 8, 9, 13)
//	kplexbench -ext ubcolor    # extension: coloring-bound ablation
//	kplexbench -ext maximum    # extension: maximum k-plex solvers
//	kplexbench -ext scheduler  # extension: parallel scheduler ablation
//	kplexbench -ext jobs       # extension: job-subsystem checkpoint overhead
//	kplexbench -ext prepare    # extension: prepared-graph prologue amortization
//	kplexbench -ext batch      # extension: batched q-sweep amortization
//	kplexbench -ext kernels    # extension: dense-vs-merge seed kernels
//	kplexbench -ext store      # extension: out-of-core graph store
//	kplexbench -ext qos        # extension: weighted-fair admission + sampling estimates
//	kplexbench -json FILE      # write the selected extension's machine-readable
//	                           # snapshot to FILE; alone it implies -ext jobs
//	                           # (defaults: BENCH_jobs.json / BENCH_prepare.json /
//	                           # BENCH_batch.json / BENCH_kernels.json /
//	                           # BENCH_store.json)
//	kplexbench -quick ...      # representative subset, ~1 minute total
//	kplexbench -threads 8 ...  # worker count for the parallel experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		table    = flag.Int("table", 0, "regenerate one table (2-7)")
		figure   = flag.Int("figure", 0, "regenerate one figure (7, 8, 9, 13)")
		ext      = flag.String("ext", "", "extension experiment: ubcolor, maximum, scheduler, jobs, prepare, batch, kernels, store or qos")
		all      = flag.Bool("all", false, "regenerate everything")
		quick    = flag.Bool("quick", false, "representative subset only")
		threads  = flag.Int("threads", 0, "parallel worker count (default min(16, CPUs))")
		jsonPath = flag.String("json", "", "write the selected extension's machine-readable snapshot to this file (alone it implies -ext jobs)")
	)
	flag.Parse()

	cfg := &bench.Config{Quick: *quick, Threads: *threads, Out: os.Stdout}

	benchJSON := *jsonPath
	if benchJSON == "" {
		benchJSON = "BENCH_jobs.json"
	}
	prepareJSON := *jsonPath
	if prepareJSON == "" {
		prepareJSON = "BENCH_prepare.json"
	}
	batchJSON := *jsonPath
	if batchJSON == "" {
		batchJSON = "BENCH_batch.json"
	}
	kernelsJSON := *jsonPath
	if kernelsJSON == "" {
		kernelsJSON = "BENCH_kernels.json"
	}
	storeJSON := *jsonPath
	if storeJSON == "" {
		storeJSON = "BENCH_store.json"
	}
	qosJSON := *jsonPath
	if qosJSON == "" {
		qosJSON = "BENCH_qos.json"
	}

	type job struct {
		name string
		run  func() error
		ext  bool // selectable via -ext
	}
	jobs := map[string]job{
		"table2":    {name: "Table 2", run: cfg.Table2},
		"table3":    {name: "Table 3", run: cfg.Table3},
		"table4":    {name: "Table 4", run: cfg.Table4},
		"table5":    {name: "Table 5", run: cfg.Table5},
		"table6":    {name: "Table 6", run: cfg.Table6},
		"table7":    {name: "Table 7", run: cfg.Table7},
		"figure7":   {name: "Figure 7", run: cfg.Figure7},
		"figure8":   {name: "Figure 8", run: cfg.Figure8},
		"figure9":   {name: "Figure 9", run: cfg.Figure9},
		"figure13":  {name: "Figure 13", run: cfg.Figure13},
		"figure14":  {name: "Figure 14", run: cfg.Figure14},
		"figure15":  {name: "Figure 15", run: cfg.Figure15},
		"ubcolor":   {name: "Table 5x (extension)", run: cfg.TableUBColor, ext: true},
		"maximum":   {name: "Table M (extension)", run: cfg.TableMaximum, ext: true},
		"scheduler": {name: "Table S (extension)", run: cfg.TableScheduler, ext: true},
		"jobs":      {name: "Jobs checkpoint overhead (extension)", run: func() error { return cfg.JobsBench(benchJSON) }, ext: true},
		"prepare":   {name: "Prepared-graph amortization (extension)", run: func() error { return cfg.PrepareBench(prepareJSON) }, ext: true},
		"batch":     {name: "Batched-sweep amortization (extension)", run: func() error { return cfg.BatchBench(batchJSON) }, ext: true},
		"kernels":   {name: "Seed-kernel dense-vs-merge (extension)", run: func() error { return cfg.KernelsBench(kernelsJSON) }, ext: true},
		"store":     {name: "Out-of-core graph store (extension)", run: func() error { return cfg.StoreBench(storeJSON) }, ext: true},
		"qos":       {name: "Multi-tenant QoS (extension)", run: func() error { return cfg.QoSBench(qosJSON) }, ext: true},
	}
	order := []string{
		"table2", "table3", "figure7", "table4", "figure8",
		"table5", "table6", "figure9", "figure13", "figure14",
		"figure15", "table7", "ubcolor", "maximum", "scheduler",
		"jobs", "prepare", "batch", "kernels", "store", "qos",
	}

	var selected []string
	switch {
	case *jsonPath != "" && *ext == "":
		// Backwards compatible: a bare -json means the jobs snapshot.
		selected = []string{"jobs"}
	case *all:
		selected = order
	case *table != 0:
		key := fmt.Sprintf("table%d", *table)
		if _, ok := jobs[key]; !ok {
			fmt.Fprintf(os.Stderr, "kplexbench: no such table %d (have 2-7)\n", *table)
			os.Exit(2)
		}
		selected = []string{key}
	case *figure != 0:
		key := fmt.Sprintf("figure%d", *figure)
		if _, ok := jobs[key]; !ok {
			fmt.Fprintf(os.Stderr, "kplexbench: no such figure %d (have 7, 8, 9, 13, 14, 15)\n", *figure)
			os.Exit(2)
		}
		selected = []string{key}
	case *ext != "":
		if j, ok := jobs[*ext]; !ok || !j.ext {
			var have []string
			for key, j := range jobs {
				if j.ext {
					have = append(have, key)
				}
			}
			sort.Strings(have)
			fmt.Fprintf(os.Stderr, "kplexbench: no such extension %q (have %s)\n", *ext, strings.Join(have, ", "))
			os.Exit(2)
		}
		selected = []string{*ext}
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, key := range selected {
		if err := jobs[key].run(); err != nil {
			fmt.Fprintf(os.Stderr, "kplexbench: %s: %v\n", jobs[key].name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
