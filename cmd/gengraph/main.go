// Command gengraph writes synthetic graphs in edge-list format, either from
// the named benchmark suite or from raw generator parameters.
//
// Usage:
//
//	gengraph -suite wiki-vote-syn > wiki.txt
//	gengraph -model gnp -n 1000 -p 0.05 -seed 7 > gnp.txt
//	gengraph -model chunglu -n 10000 -avgdeg 12 -gamma 2.3 > cl.txt
//	gengraph -model ba -n 5000 -m 8 > ba.txt
//	gengraph -model rmat -scale 14 -edgefactor 8 > rmat.txt
//	gengraph -model planted -n 2000 -communities 20 -commsize 15 -drop 2 > pl.txt
//	gengraph -model rmat -scale 20 -o big.kpg   # write the mmap store format directly
//	gengraph -list    # show suite dataset names and stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/store"
)

func main() {
	var (
		suite       = flag.String("suite", "", "emit a named benchmark dataset")
		list        = flag.Bool("list", false, "list benchmark datasets with their stats")
		model       = flag.String("model", "", "generator: gnp | chunglu | ba | rmat | planted")
		n           = flag.Int("n", 1000, "vertex count")
		p           = flag.Float64("p", 0.01, "gnp edge probability / planted background probability")
		avgdeg      = flag.Float64("avgdeg", 10, "chunglu target average degree")
		gamma       = flag.Float64("gamma", 2.5, "chunglu power-law exponent")
		m           = flag.Int("m", 5, "ba attachment edges per vertex")
		scale       = flag.Int("scale", 12, "rmat scale (n = 2^scale)")
		edgefactor  = flag.Int("edgefactor", 8, "rmat edges per vertex")
		communities = flag.Int("communities", 10, "planted community count")
		commsize    = flag.Int("commsize", 15, "planted community size")
		drop        = flag.Int("drop", 1, "planted missing edges per community vertex")
		overlap     = flag.Int("overlap", 0, "planted overlap between consecutive communities")
		seed        = flag.Int64("seed", 1, "random seed")
		binOut      = flag.Bool("binary", false, "emit the compact binary format instead of text")
		out         = flag.String("o", "", "write to this file instead of stdout; a .kpg suffix selects the mmap store format")
	)
	flag.Parse()

	if *list {
		for _, d := range bench.Suite() {
			s := graph.ComputeStats(d.Build())
			fmt.Printf("%-14s %-6s analog=%-12s %s\n", d.Name, d.Class, d.Analog, s)
		}
		return
	}

	var g *graph.Graph
	switch {
	case *suite != "":
		d, ok := bench.ByName(*suite)
		if !ok {
			fmt.Fprintf(os.Stderr, "gengraph: unknown dataset %q; try -list\n", *suite)
			os.Exit(2)
		}
		g = d.Build()
	case *model == "gnp":
		g = gen.GNP(*n, *p, *seed)
	case *model == "chunglu":
		g = gen.ChungLu(*n, *avgdeg, *gamma, *seed)
	case *model == "ba":
		g = gen.BarabasiAlbert(*n, *m, *seed)
	case *model == "rmat":
		g = gen.RMAT(*scale, *edgefactor, 0.57, 0.19, 0.19, *seed)
	case *model == "planted":
		g = gen.Planted(gen.PlantedConfig{
			N: *n, BackgroundP: *p, Communities: *communities,
			CommSize: *commsize, DropPerV: *drop, Overlap: *overlap, Seed: *seed,
		})
	default:
		fmt.Fprintln(os.Stderr, "gengraph: need -suite, -list or -model")
		flag.Usage()
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "generated: %s\n", graph.ComputeStats(g))
	if strings.HasSuffix(*out, store.StoreExt) {
		if err := store.WriteGraphFile(*out, g, 0); err != nil {
			fmt.Fprintln(os.Stderr, "gengraph:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (digest %s)\n", *out, graph.DigestHexOf(g)[:16])
		return
	}
	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gengraph:", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	write := graph.WriteEdgeList
	if *binOut {
		write = graph.WriteBinary
	}
	if err := write(dst, g); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}
