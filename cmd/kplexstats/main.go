// Command kplexstats prints dataset statistics: the paper's Table 2 columns
// (n, m, Δ, D) plus the extended measures (clustering, assortativity, shell
// structure) used to check that the synthetic suite tracks its real-graph
// analogues.
//
// Usage:
//
//	kplexstats -suite                 # every dataset in the benchmark suite
//	kplexstats -dataset dblp-syn      # one suite dataset
//	kplexstats graph.txt [more...]    # graph files (format auto-detected)
//	kplexstats -format metis g.metis  # explicit input format
//	kplexstats -shells g.txt          # also print the k-shell profile
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/graph"
)

func main() {
	var (
		suite   = flag.Bool("suite", false, "print stats for the whole benchmark suite")
		dataset = flag.String("dataset", "", "print stats for one suite dataset")
		format  = flag.String("format", "", "input format: edgelist, dimacs, metis, matrixmarket, binary (default: auto)")
		shells  = flag.Bool("shells", false, "also print the coreness shell sizes")
	)
	flag.Parse()

	switch {
	case *suite:
		for _, d := range bench.Suite() {
			printStats(d.Name, d.Build(), *shells)
		}
	case *dataset != "":
		d, ok := bench.ByName(*dataset)
		if !ok {
			fmt.Fprintf(os.Stderr, "kplexstats: unknown dataset %q; have %v\n", *dataset, bench.Names())
			os.Exit(2)
		}
		printStats(d.Name, d.Build(), *shells)
	case flag.NArg() > 0:
		f, err := parseFormat(*format)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kplexstats:", err)
			os.Exit(2)
		}
		for _, path := range flag.Args() {
			g, err := graph.ReadFormatFile(path, f)
			if err != nil {
				fmt.Fprintf(os.Stderr, "kplexstats: %s: %v\n", path, err)
				os.Exit(1)
			}
			printStats(path, g, *shells)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func parseFormat(name string) (graph.Format, error) {
	switch name {
	case "":
		return graph.FormatUnknown, nil
	case "edgelist":
		return graph.FormatEdgeList, nil
	case "dimacs":
		return graph.FormatDIMACS, nil
	case "metis":
		return graph.FormatMETIS, nil
	case "matrixmarket":
		return graph.FormatMatrixMarket, nil
	case "binary":
		return graph.FormatBinary, nil
	default:
		return graph.FormatUnknown, fmt.Errorf("unknown format %q", name)
	}
}

func printStats(name string, g *graph.Graph, shells bool) {
	s := graph.ComputeExtendedStats(g)
	fmt.Printf("%s:\n", name)
	fmt.Printf("  n=%d m=%d Δ=%d D=%d avg-deg=%.2f\n",
		s.N, s.M, s.MaxDegree, s.Degeneracy, s.AvgDegree)
	fmt.Printf("  triangles=%d transitivity=%.4f avg-clustering=%.4f\n",
		s.Triangles, s.Transitivity, s.AvgClustering)
	fmt.Printf("  assortativity=%+.4f components=%d diam>=%d\n",
		s.Assortativity, s.Components, s.ApproxDiam)
	if shells {
		fmt.Printf("  shells:")
		for c, size := range graph.ShellSizes(g) {
			if size > 0 {
				fmt.Printf(" %d:%d", c, size)
			}
		}
		fmt.Println()
	}
}
