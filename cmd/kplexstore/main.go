// Command kplexstore manages the out-of-core graph store: it converts
// edge lists into the mmap-ready .kpg format with bounded memory, inspects
// and verifies existing store files, and registers them in a kplexd
// catalog directory for O(1) warm serving.
//
// Usage:
//
//	kplexstore convert [-sortbuf N] [-block N] [-tmp dir] input.txt output.kpg
//	kplexstore convert - output.kpg              # read the edge list from stdin
//	kplexstore inspect [-verify] file.kpg
//	kplexstore register -catalog dir [-name n] file.kpg
//
// convert streams the input through an external sort (bounded spill runs +
// k-way merge), so graphs far larger than RAM convert in O(run size)
// resident memory. inspect prints the header as JSON; -verify additionally
// recomputes the content digest over every block (a full scan). register
// copies nothing: the file must already live in the catalog directory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/store"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "convert":
		err = runConvert(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	case "register":
		err = runRegister(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "kplexstore:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  kplexstore convert [-sortbuf arcs] [-block verts] [-tmp dir] <input.txt|-> <output.kpg>
  kplexstore inspect [-verify] <file.kpg>
  kplexstore register -catalog <dir> [-name <name>] <file.kpg>`)
}

func runConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	sortbuf := fs.Int("sortbuf", 0, "in-memory sort buffer in directed arcs (0: 4Mi arcs = 32 MiB); peak RSS tracks this, not graph size")
	block := fs.Int("block", 0, "vertices per adjacency block (0: default)")
	tmp := fs.String("tmp", "", "spill-run directory (default: alongside the output)")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 2 {
		return fmt.Errorf("convert needs an input (or -) and an output path")
	}
	in, out := fs.Arg(0), fs.Arg(1)

	src := os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	start := time.Now()
	info, err := store.ConvertEdgeList(src, out, store.ConvertOptions{
		SortBufArcs: *sortbuf,
		BlockVerts:  *block,
		TmpDir:      *tmp,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "converted in %s: n=%d m=%d runs=%d bytes=%d (%.2f bytes/edge)\n",
		time.Since(start).Round(time.Millisecond), info.N, info.M, info.Runs,
		info.FileBytes, float64(info.FileBytes)/float64(max64(info.M, 1)))
	return json.NewEncoder(os.Stdout).Encode(info)
}

func runInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	verify := fs.Bool("verify", false, "recompute the content digest over every block (full scan)")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if fs.NArg() != 1 {
		return fmt.Errorf("inspect needs exactly one store file")
	}
	r, err := store.OpenFile(fs.Arg(0))
	if err != nil {
		return err
	}
	defer r.Close()
	h := r.Header()
	out := map[string]any{
		"path":       fs.Arg(0),
		"version":    h.Version,
		"n":          h.N,
		"m":          h.M,
		"maxDeg":     h.MaxDeg,
		"blockVerts": h.BlockVerts,
		"numBlocks":  h.NumBlocks,
		"dataBytes":  h.DataLen,
		"digest":     r.DigestHex(),
	}
	if *verify {
		start := time.Now()
		if err := r.VerifyDigest(); err != nil {
			return err
		}
		out["verified"] = true
		out["verifyElapsed"] = time.Since(start).Round(time.Millisecond).String()
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func runRegister(args []string) error {
	fs := flag.NewFlagSet("register", flag.ExitOnError)
	catalogDir := fs.String("catalog", "", "catalog directory (required)")
	name := fs.String("name", "", "name to serve the graph under (default: filename without .kpg)")
	fs.Parse(args) //nolint:errcheck // ExitOnError
	if *catalogDir == "" || fs.NArg() != 1 {
		return fmt.Errorf("register needs -catalog and exactly one store file inside it")
	}
	file := filepath.Base(fs.Arg(0))
	if dir := filepath.Dir(fs.Arg(0)); dir != "." && dir != filepath.Clean(*catalogDir) {
		return fmt.Errorf("store file %q must live inside the catalog directory %q (move it there first; register copies nothing)", fs.Arg(0), *catalogDir)
	}
	n := *name
	if n == "" {
		n = strings.TrimSuffix(file, store.StoreExt)
	}
	cat, err := store.OpenCatalog(*catalogDir)
	if err != nil {
		return err
	}
	e, err := cat.Register(n, file)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
