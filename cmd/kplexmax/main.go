// Command kplexmax finds a maximum-cardinality k-plex (among those with at
// least 2k-1 vertices) of an edge-list graph, via binary search over the
// size threshold with first-hit enumeration queries.
//
// Usage:
//
//	kplexmax -k 2 graph.txt
//	kplexmax -k 3 -ctcp graph.txt     # with kPlexS-style preprocessing
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"repro/internal/graph"
	"repro/internal/kplex"
)

func main() {
	var (
		k    = flag.Int("k", 2, "k-plex parameter")
		ctcp = flag.Bool("ctcp", false, "apply the CTCP reduction before searching")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: kplexmax [flags] <edge-list file>")
		flag.Usage()
		os.Exit(2)
	}

	rr, err := graph.ReadAnyFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "kplexmax:", err)
		os.Exit(1)
	}
	g := rr.Graph
	if *ctcp {
		g = graph.Materialize(kplex.ReduceCTCP(g, *k, 2**k-1))
	}
	fmt.Fprintf(os.Stderr, "graph: %s\n", graph.ComputeStats(g))

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	start := time.Now()
	p, err := kplex.FindMaximumKPlex(ctx, g, *k)
	if err != nil {
		fmt.Fprintf(os.Stderr, "kplexmax: %v\n", err)
		os.Exit(1)
	}
	if p == nil {
		fmt.Fprintf(os.Stderr, "no %d-plex with >= %d vertices exists\n", *k, 2**k-1)
		os.Exit(0)
	}
	fmt.Fprintf(os.Stderr, "maximum %d-plex has %d vertices (found in %v):\n",
		*k, len(p), time.Since(start).Round(time.Millisecond))
	for i, v := range p {
		if i > 0 {
			fmt.Print(" ")
		}
		fmt.Print(rr.OrigID[v])
	}
	fmt.Println()
}
