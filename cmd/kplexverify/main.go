// Command kplexverify checks enumeration result files: that every reported
// set is a maximal k-plex of the graph with at least q vertices and that
// the file contains no duplicates; or that two result files (e.g. from two
// different algorithms) contain exactly the same plexes. This mechanises
// the paper's Section 7 validation that all compared algorithms "return
// the same result set".
//
// Usage:
//
//	kplexverify -graph g.txt -k 2 -q 12 results.txt
//	kplexverify -against other.bin results.txt     # set equality only
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
	"repro/internal/sink"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file (required unless -against)")
		k         = flag.Int("k", 2, "k-plex parameter")
		q         = flag.Int("q", 0, "minimum size (default 2k-1)")
		against   = flag.String("against", "", "second result file to compare for set equality")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: kplexverify [flags] <result file>")
		flag.Usage()
		os.Exit(2)
	}
	if *q == 0 {
		*q = 2**k - 1
	}

	plexes := mustReadResults(flag.Arg(0))

	if *against != "" {
		other := mustReadResults(*against)
		if sink.Equal(plexes, other) {
			fmt.Printf("EQUAL: %s and %s contain the same %d plexes\n",
				flag.Arg(0), *against, len(plexes))
			return
		}
		fmt.Printf("DIFFER: %s has %d plexes, %s has %d\n",
			flag.Arg(0), len(plexes), *against, len(other))
		os.Exit(1)
	}

	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "kplexverify: -graph is required (or use -against)")
		os.Exit(2)
	}
	rr, err := graph.ReadAnyFile(*graphPath)
	if err != nil {
		fatal(err)
	}
	// Result files use the input file's vertex labels; translate them back
	// to the compacted id space before verification.
	label2id := make(map[int]int, len(rr.OrigID))
	for id, label := range rr.OrigID {
		label2id[int(label)] = id
	}
	translated := make([][]int, len(plexes))
	for i, p := range plexes {
		tp := make([]int, len(p))
		for j, label := range p {
			id, ok := label2id[label]
			if !ok {
				id = rr.Graph.N() // out of range: Verify reports it
			}
			tp[j] = id
		}
		translated[i] = tp
	}

	rep := sink.Verify(rr.Graph, translated, *k, *q)
	fmt.Println(rep)
	if !rep.OK() {
		os.Exit(1)
	}
}

func mustReadResults(path string) [][]int {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	plexes, err := sink.ReadAll(f)
	if err != nil {
		fatal(err)
	}
	return plexes
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kplexverify:", err)
	os.Exit(1)
}
