// Command kplexd is the k-plex query service: a long-running HTTP server
// that keeps parsed graphs resident and answers enumeration queries with
// result caching, singleflight batching of identical concurrent queries,
// and incremental streaming of large result sets.
//
// Endpoints (see the README for full query shapes):
//
//	GET  /healthz          liveness
//	GET  /stats            counters, cache and registry occupancy
//	GET  /graphs           resident graphs
//	POST /graphs           {"name": "g.txt"} — preload a graph
//	DELETE /graphs/{name}  evict a resident graph
//	POST /query            {"graph","k","q","mode",...} — count | topk | histogram | stream
//	GET  /stream           stream query via URL parameters (NDJSON)
//
// Graph names are file paths under -data (any supported format,
// auto-detected) or builtin corpus graphs ("corpus:planted-a", ...).
//
// Example:
//
//	kplexd -addr :8080 -data ./graphs &
//	curl -s localhost:8080/query -d '{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count"}'
//	curl -sN 'localhost:8080/stream?graph=corpus:planted-a&k=2&q=6'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		dataDir      = flag.String("data", "", "directory graph files are served from (empty: corpus graphs only)")
		maxGraphs    = flag.Int("max-graphs", 8, "resident graph cap (idle graphs beyond it are evicted LRU)")
		cacheEntries = flag.Int("cache", 256, "result cache capacity (completed queries)")
		maxConc      = flag.Int("max-concurrent", 0, "concurrent enumeration bound (0: NumCPU)")
		admitWait    = flag.Duration("admission-timeout", 2*time.Second, "how long a query waits for a slot before 429")
		queryBudget  = flag.Duration("query-timeout", 5*time.Minute, "time budget of one cacheable enumeration")
		threads      = flag.Int("threads", 0, "default engine threads per query (0: NumCPU)")
		maxK         = flag.Int("max-k", 8, "largest accepted k")
		preload      = flag.String("preload", "", "comma-separated graph names to load at startup")
	)
	flag.Parse()

	srv := server.New(server.Config{
		DataDir:           *dataDir,
		MaxResidentGraphs: *maxGraphs,
		CacheEntries:      *cacheEntries,
		MaxConcurrent:     *maxConc,
		AdmissionTimeout:  *admitWait,
		QueryTimeout:      *queryBudget,
		DefaultThreads:    *threads,
		MaxK:              *maxK,
	})
	defer srv.Close()

	for _, name := range strings.Split(*preload, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		e, err := srv.Registry().Acquire(name)
		if err != nil {
			log.Fatalf("preload %q: %v", name, err)
		}
		log.Printf("preloaded %s: n=%d m=%d digest=%s", name, e.G.N(), e.G.M(), e.Digest[:12])
		srv.Registry().Release(e)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Graceful shutdown: stop accepting, drain handlers, cancel detached
	// executions.
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx) //nolint:errcheck
		srv.Close()
		close(idle)
	}()

	log.Printf("kplexd listening on %s (data=%q)", *addr, *dataDir)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	<-idle
}
