// Command kplexd is the k-plex query service: a long-running HTTP server
// that keeps parsed graphs resident and answers enumeration queries with
// result caching, singleflight batching of identical concurrent queries,
// incremental streaming of large result sets, and (with -jobs) durable
// background jobs that checkpoint seed-level progress and resume after a
// restart.
//
// Endpoints (see the README for full query shapes):
//
//	GET  /healthz            liveness
//	GET  /stats              counters, cache and registry occupancy (JSON)
//	GET  /metrics            the same counters in Prometheus text format
//	GET  /graphs             resident graphs
//	POST /graphs             {"name": "g.txt"} — preload a graph
//	DELETE /graphs/{name}    evict a resident graph
//	POST /query              {"graph","k","q","mode",...} — count | topk | histogram | stream
//	GET  /stream             stream query via URL parameters (NDJSON)
//	POST /jobs               submit a durable background enumeration
//	GET  /jobs[/{id}]        list jobs / one job's progress
//	GET  /jobs/{id}/events   NDJSON progress feed
//	GET  /jobs/{id}/result   completed job's result
//	POST /jobs/{id}/cancel   cancel an active job
//	DELETE /jobs/{id}        cancel (active) or delete (terminal)
//	POST /cluster/run        execute one leased seed range (every kplexd is a worker)
//	POST /cluster/workers    register a worker (coordinator only; see -coordinator)
//	POST /cluster/jobs       submit a distributed enumeration (coordinator only)
//	GET  /debug/queries      in-flight queries: stage, age, seed progress
//	GET  /debug/traces       recent finished request traces
//	GET  /debug/traces/{id}  one trace with all spans (see X-Trace-Id)
//
// With -debug-addr a second, private listener additionally serves
// net/http/pprof under /debug/pprof/.
//
// Graph names are file paths under -data (any supported format,
// auto-detected; *.kpg served mmap-backed), names registered in the
// -catalog directory, or builtin corpus graphs ("corpus:planted-a", ...).
//
// Example:
//
//	kplexd -addr :8080 -data ./graphs -jobs ./jobs &
//	curl -s localhost:8080/query -d '{"graph":"corpus:planted-a","k":2,"q":6,"mode":"count"}'
//	curl -s localhost:8080/jobs -d '{"graph":"corpus:planted-a","k":2,"q":6}'
//
// Distributed enumeration: start worker kplexds normally, then one
// coordinator naming them (a coordinator may list itself and double as a
// worker):
//
//	kplexd -addr :8081 &
//	kplexd -addr :8080 -coordinator -cluster-dir ./cluster \
//	       -workers http://localhost:8080,http://localhost:8081 &
//	curl -s localhost:8080/cluster/jobs -d '{"graph":"corpus:planted-a","k":2,"q":6}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/qos"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run owns the server lifecycle so every exit path — including startup
// errors — releases resources through the same defers (a log.Fatalf here
// would skip srv.Close and strand detached executions and running jobs).
func run() error {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		dataDir      = flag.String("data", "", "directory graph files are served from (empty: corpus graphs only)")
		catalogDir   = flag.String("catalog", "", "persistent graph catalog directory: registered .kpg stores are served mmap-backed and run prologues persist across restarts (empty: disabled)")
		jobsDir      = flag.String("jobs", "", "directory for durable background jobs (empty: /jobs endpoints disabled)")
		jobWorkers   = flag.Int("job-workers", 2, "concurrently running background jobs")
		maxGraphs    = flag.Int("max-graphs", 8, "resident graph cap (idle graphs beyond it are evicted LRU)")
		cacheEntries = flag.Int("cache", 256, "result cache capacity (completed queries)")
		maxConc      = flag.Int("max-concurrent", 0, "concurrent enumeration bound (0: NumCPU)")
		tenants      = flag.String("tenants", "", `per-tenant QoS profiles, e.g. "gold:weight=3,rate=50,burst=100;bronze:weight=1,max=2" (tenant from the X-Kplexd-Tenant header; empty: all tenants equal)`)
		admitWait    = flag.Duration("admission-timeout", 2*time.Second, "how long a query waits for a slot before 429")
		queryBudget  = flag.Duration("query-timeout", 5*time.Minute, "time budget of one cacheable enumeration")
		threads      = flag.Int("threads", 0, "default engine threads per query (0: NumCPU)")
		maxK         = flag.Int("max-k", 8, "largest accepted k")
		routeAsync   = flag.Duration("route-async-threshold", 30*time.Second, "predicted runtime above which route=auto queries become background jobs (requires -jobs)")
		preload      = flag.String("preload", "", "comma-separated graph names to load at startup")
		coordinator  = flag.Bool("coordinator", false, "enable the distributed-enumeration coordinator (/cluster/jobs)")
		clusterDir   = flag.String("cluster-dir", "kplex-cluster", "coordinator state directory (range checkpoints; with -coordinator)")
		workers      = flag.String("workers", "", "comma-separated worker base URLs the coordinator leases ranges to")
		leaseTimeout = flag.Duration("lease-timeout", 15*time.Second, "fail a range lease with no worker progress for this long")
		debugAddr    = flag.String("debug-addr", "", "private listen address for pprof and debug endpoints (empty: disabled; bind to loopback)")
		traceSample  = flag.Int("trace-sample", 1, "trace 1 in N interactive requests (jobs are always traced)")
		slowLog      = flag.String("slow-query-log", "", "path of the rotating slow-query NDJSON log (empty: disabled)")
		slowAfter    = flag.Duration("slow-query-threshold", time.Second, "wall-clock above which a request is recorded in the slow-query log")
	)
	flag.Parse()

	var workerURLs []string
	for _, u := range strings.Split(*workers, ",") {
		if u = strings.TrimSpace(u); u != "" {
			workerURLs = append(workerURLs, u)
		}
	}
	coordDir := ""
	if *coordinator {
		coordDir = *clusterDir
	}

	tenantCfg, err := qos.ParseTenants(*tenants)
	if err != nil {
		return fmt.Errorf("-tenants: %w", err)
	}

	srv, err := server.New(server.Config{
		DataDir:             *dataDir,
		CatalogDir:          *catalogDir,
		JobsDir:             *jobsDir,
		JobWorkers:          *jobWorkers,
		MaxResidentGraphs:   *maxGraphs,
		CacheEntries:        *cacheEntries,
		MaxConcurrent:       *maxConc,
		Tenants:             tenantCfg,
		AdmissionTimeout:    *admitWait,
		QueryTimeout:        *queryBudget,
		DefaultThreads:      *threads,
		MaxK:                *maxK,
		RouteAsyncThreshold: *routeAsync,
		ClusterDir:          coordDir,
		ClusterWorkers:      workerURLs,
		ClusterLeaseTimeout: *leaseTimeout,
		TraceSampleEvery:    *traceSample,
		SlowQueryLog:        *slowLog,
		SlowQueryThreshold:  *slowAfter,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	// Preload failures are warnings, not fatal: one bad name in the list
	// must neither kill the process nor throw away the graphs that did
	// load. Each failure names its graph so the operator can fix the list.
	var failed []string
	for _, name := range strings.Split(*preload, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		e, err := srv.Registry().Acquire(name)
		if err != nil {
			log.Printf("preload %q failed: %v", name, err)
			failed = append(failed, name)
			continue
		}
		log.Printf("preloaded %s: n=%d m=%d digest=%s", name, e.G.N(), e.G.M(), e.Digest[:12])
		srv.Registry().Release(e)
	}
	if len(failed) > 0 {
		log.Printf("preload: %d of the requested graphs unavailable (%s); serving the rest", len(failed), strings.Join(failed, ", "))
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The debug listener carries pprof, which can stall the process for
	// seconds per profile; it is a second server on a (normally loopback)
	// address so the public API port never exposes it. Best-effort: a debug
	// listener that cannot bind logs and moves on rather than killing the
	// service.
	var ds *http.Server
	if *debugAddr != "" {
		ds = &http.Server{
			Addr:              *debugAddr,
			Handler:           srv.DebugHandler(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			log.Printf("debug listener (pprof, /debug/queries, /debug/traces) on %s", *debugAddr)
			if err := ds.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener failed: %v", err)
			}
		}()
	}

	// Graceful shutdown: stop accepting, drain handlers, checkpoint and
	// stop background jobs, cancel detached executions.
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		hs.Shutdown(ctx) //nolint:errcheck
		if ds != nil {
			ds.Shutdown(ctx) //nolint:errcheck
		}
		srv.Close()
		close(idle)
	}()

	role := "worker"
	if *coordinator {
		role = fmt.Sprintf("coordinator (%d workers)", len(workerURLs))
	}
	log.Printf("kplexd listening on %s (data=%q catalog=%q jobs=%q cluster=%s)", *addr, *dataDir, *catalogDir, *jobsDir, role)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	<-idle
	return nil
}
